//! The schedule explorer: bounded, deterministic, parallel exploration of
//! every interleaving of message delivery, message loss, site crash, site
//! recovery and detector suspicion that the budgets allow.
//!
//! ## State space
//!
//! Exploration runs the real engine [`Runner`] in **lockstep**
//! configuration (zero latency, zero detection delay): every scheduled
//! event sits at the same instant, so *which event fires next* is pure
//! scheduler choice and logical time vanishes from the state. The explored
//! actions are:
//!
//! * **deliver** the head of one FIFO channel (per-link message order and
//!   per-observer detector order are preserved; only heads are legal);
//! * **crash** an up site, losing a *suffix* of its undelivered sends —
//!   one branch per suffix length, which is the explorer-granularity form
//!   of the paper's non-atomic transition failure (crash after sending
//!   only a prefix of a transition's messages);
//! * **recover** a down site (budgeted separately), which replays its WAL
//!   and runs the paper's recovery protocol;
//! * **drop** the most recently sent in-flight message of a link — a
//!   deliberate *assumption violation* (the paper assumes a reliable
//!   network), budgeted separately and off by default;
//! * **suspect** a live in-view peer — the imperfect (timeout-based)
//!   failure detector's false-suspicion choice, budgeted separately and
//!   off by default — and **unsuspect** a standing suspicion, which is
//!   budget-free: once a suspicion exists, the detector may clear it at
//!   any later point, so every revocation ordering is explored.
//!
//! ## Deduplication and pruning
//!
//! States are deduplicated by the engine's behavioral
//! [`digest`](Runner::digest) (a 128-bit fingerprint via the same
//! double-hash construction as [`nbc_core::fingerprint128`]) mixed with
//! the remaining budgets. The map stores the best remaining depth a state
//! was reached with; a revisit with less remaining depth is pruned, a
//! revisit with more is re-expanded (so the depth bound never hides states
//! a shallower path could reach).
//!
//! When every fault budget is exhausted and every pending event targets a
//! distinct site, all pending heads are **fused** into one macro-step:
//! handlers of distinct destination sites commute as state transformers,
//! nothing can interleave between them, and decisions are monotone (an
//! oracle violation visible in a skipped intermediate state is still
//! visible in the fused successor — outcomes never unset and the visited
//! monitors are cumulative). Two further sound reductions: events
//! addressed to a permanently-down site (no recovery budget left) are
//! pure no-ops and are drained eagerly rather than branched over, and the
//! behavioral digest canonicalizes arrival-order collections whose
//! consumers are order-independent.
//!
//! ## Parallel exploration and determinism
//!
//! The walk is an **explicit work-stack DFS** (no recursion — `--depth`
//! bounds the schedule, not the call stack) fanned out over
//! [`std::thread::scope`]: the subtrees rooted at (vote plan × root
//! action) seed a shared task queue, and a worker whose neighbor goes
//! idle donates the shallowest untried branch of its own stack as a fresh
//! task. Each vote plan owns a **sharded fingerprint map** (the digest
//! deliberately excludes the vote plan, so identical digests under
//! different plans are different futures and must not merge).
//!
//! Every *reported* quantity is a function of the exploration's
//! order-independent fixpoint, never of scheduling:
//!
//! * the set of visited states — and hence the witnessed-state bitmaps,
//!   per-plan violation flags and per-plan blocking flags — is invariant
//!   (a state is expanded whenever reached with more remaining depth than
//!   any prior expansion, so the final map is the same whatever the
//!   interleaving);
//! * `distinct_states` counts that map's entries; `actions`, `fused` and
//!   the depth-side of `truncated` are recomputed *per entry at its
//!   deepest expansion* rather than accumulated per traversal event
//!   (re-expansions would otherwise double-count, differently per run);
//! * concrete witnesses are **not** taken from the parallel sweep at all:
//!   a second, serial, canonical-order search of the lexicographically
//!   least flagged plan reproduces the first violation (and, separately,
//!   the first blocking state) it reaches — the least (plan, branch
//!   path) under the canonical enumeration order, byte-identical at any
//!   thread count and any seed.
//!
//! Even the `max_states` safety valve is deterministic: once a plan
//! trips it (which happens iff the plan's fixpoint reaches the cap — a
//! property of the state space, not of scheduling), the plan's stats,
//! violation flags, blocking flag and witnessed-state bitmap are
//! *recomputed* by a serial canonical-order sweep under the same cap and
//! the parallel results discarded — so truncated reports are
//! byte-identical at any thread count **and any seed** (the redo ignores
//! the seed), at the cost of one serial pass over the capped plan.
//!
//! Previously the sweep also stopped at the first hard violation, which
//! left later plans unexplored while still reporting "exhaustive"; the
//! sweep now always runs to its fixpoint and the `truncated` flag means
//! exactly what it says.
//!
//! ## External memory
//!
//! With [`CheckOptions::mem_budget`] set, each plan's fingerprint shards
//! become the hot tier of a two-level store: whenever the hot tier
//! crosses the byte budget, a worker locks *all* of the plan's shards (in
//! index order, then the run-store write lock — probers hold one shard
//! plus the read lock, so the orders cannot deadlock), drains them, and
//! spills the entries as one sorted run file ([`nbc_core::extmem`]).
//! Membership stays *exact* — a hot miss probes the runs before counting
//! an insert — and `best` is monotone while stats merge by deepest
//! `stats_depth`, so reports are byte-identical to the unlimited path at
//! any thread count and seed; only the out-of-band [`SpillStats`]
//! (stderr/bench reporting, never part of a rendered report) differ.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, RwLock};

use nbc_core::{fingerprint128, Analysis, Protocol, RunSet, SpillStats};
use nbc_engine::{channel_of, Channel, RunConfig, Runner, TerminationRule, Wire};
use nbc_simnet::NetEvent;

use crate::oracle::{Oracles, Witnessed};
use crate::schedule::{channel_head, channel_tail, Step};

/// Knobs of one check run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Maximum scheduler actions per execution.
    pub depth: u32,
    /// Crash budget per execution.
    pub faults: u32,
    /// Recovery budget per execution.
    pub recoveries: u32,
    /// Lossy-network drop budget per execution (assumption violation;
    /// default 0).
    pub drops: u32,
    /// Suspicion budget per execution: how many times the (imperfect,
    /// timeout-based) failure detector may start suspecting a site —
    /// possibly falsely, of a live one. Unsuspicions are free: once a
    /// suspicion exists, clearing it at any point is always a legal
    /// detector behavior, so revocations are explored without budget.
    /// Default 0 (the paper's perfect-detector world).
    pub suspicions: u32,
    /// Termination rule the engine runs under.
    pub rule: TerminationRule,
    /// Optional traversal-order perturbation. `None` (the default) keeps
    /// the canonical enumeration order; `Some(s)` rotates each state's
    /// action list by a hash of `s` — including `Some(0)`, which was
    /// formerly a silent "no shuffle" sentinel. Verdicts, stats and
    /// witnesses are order-independent, so the seed only affects
    /// traversal order (and, under a `max_states` truncation, which
    /// states fall inside the cap).
    pub seed: Option<u64>,
    /// Check only this vote plan instead of all `2^n`.
    pub vote_plan: Option<Vec<bool>>,
    /// Safety valve: stop (and report truncation) past this many distinct
    /// states per vote plan.
    pub max_states: usize,
    /// Worker threads for the parallel sweep. `0` = auto (available
    /// parallelism, capped at 8); the default is 1 — results are
    /// identical at any thread count, so threads buy wall-clock only.
    pub threads: usize,
    /// Progress hook, invoked periodically from worker threads with a
    /// snapshot of the exploration counters (stderr-style reporting; all
    /// results stay byte-identical with or without it).
    pub progress: Option<fn(&CheckProgress)>,
    /// Approximate byte budget for the hot in-RAM tier of each plan's
    /// fingerprint store. `0` (the default) keeps everything in RAM; any
    /// other value spills the hot tier to sorted temp-file runs whenever
    /// it crosses the budget (see the module docs). Reports stay
    /// byte-identical either way.
    pub mem_budget: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        Self {
            depth: 64,
            faults: 1,
            recoveries: 0,
            drops: 0,
            suspicions: 0,
            rule: TerminationRule::Skeen,
            seed: None,
            vote_plan: None,
            max_states: 1 << 21,
            threads: 1,
            progress: None,
            mem_budget: 0,
        }
    }
}

/// A progress snapshot handed to the [`CheckOptions::progress`] hook.
#[derive(Debug, Clone, Copy)]
pub struct CheckProgress {
    /// Vote plans whose subtree is fully explored.
    pub plans_done: usize,
    /// Vote plans in this run.
    pub plans_total: usize,
    /// Distinct `(digest, budgets)` states inserted so far, over all
    /// plans.
    pub distinct_states: usize,
    /// State expansions performed so far (traversal events, not the
    /// deduplicated `actions` stat of the final report).
    pub expansions: u64,
    /// Sorted runs spilled to disk so far (0 without a
    /// [`CheckOptions::mem_budget`]).
    pub spill_runs: u64,
}

/// Remaining fault budgets along one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Budgets {
    faults: u32,
    recoveries: u32,
    drops: u32,
    suspicions: u32,
}

/// One branchable scheduler action.
#[derive(Debug, Clone)]
enum Action {
    /// Deliver the head of this channel.
    Fire(Channel),
    /// Deliver the heads of all these channels as one commuting
    /// macro-step.
    Fuse(Vec<Channel>),
    /// Crash `site` and lose the last `lose` of its undelivered sends.
    CrashSuffix { site: usize, lose: usize },
    /// Restart a down site.
    Recover { site: usize },
    /// Lose the most recently sent in-flight message of this link.
    DropTail { src: usize, dst: usize },
    /// `observer` starts (possibly falsely) suspecting `peer`.
    Suspect { observer: usize, peer: usize },
    /// `observer` clears its suspicion of `peer`.
    Unsuspect { observer: usize, peer: usize },
}

impl Action {
    /// Depth cost: the number of schedule steps the action expands to.
    fn cost(&self) -> u32 {
        match self {
            Action::Fire(_)
            | Action::Recover { .. }
            | Action::DropTail { .. }
            | Action::Suspect { .. }
            | Action::Unsuspect { .. } => 1,
            Action::Fuse(chs) => chs.len() as u32,
            Action::CrashSuffix { lose, .. } => 1 + *lose as u32,
        }
    }
}

/// Exploration counters. Every field is a function of the exploration's
/// order-independent fixpoint (see the module docs), so untruncated runs
/// report identical counters at any thread count and any seed.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Distinct `(behavioral digest, budgets)` states, summed over plans.
    pub distinct_states: usize,
    /// Edges of the deduplicated exploration graph: scheduler actions
    /// applied from each distinct state at its deepest expansion.
    pub actions: u64,
    /// Distinct states whose commuting macro-step was taken.
    pub fused: u64,
    /// Vote plans explored.
    pub plans: usize,
    /// True if the depth bound (judged at each state's deepest expansion)
    /// or the state cap cut any branch short — the exploration was *not*
    /// exhaustive.
    pub truncated: bool,
}

/// Result of exploring one protocol under one option set.
pub struct Exploration<'a> {
    /// Accumulated oracle state (witness bitmap and recovery checks).
    pub oracles: Oracles<'a>,
    /// Counters.
    pub stats: ExploreStats,
    /// The canonical path to a blocked quiescent state, with the vote
    /// plan it occurred under: the first such state the canonical-order
    /// serial search reaches in the least plan containing one. Unshrunk.
    pub blocking_witness: Option<(Vec<bool>, Vec<Step>)>,
    /// Canonical first hard oracle violation: `(oracle, detail, vote
    /// plan, path)`, selected the same way. Unshrunk.
    pub violation: Option<(&'static str, String, Vec<bool>, Vec<Step>)>,
    /// External-memory activity summed over all plans' stores (all zero
    /// without a `mem_budget`). Reported out of band — never part of the
    /// rendered report, which stays byte-identical either way.
    pub spill: SpillStats,
}

/// The transaction id every checked execution runs under.
pub const CHECK_TXN: u64 = 1;

/// Destination site of a pending event — the only site its handler
/// mutates.
fn dest_of(ev: &NetEvent<Wire>) -> usize {
    match ev {
        NetEvent::Deliver { dst, .. } => *dst,
        NetEvent::FailureNotice { observer, .. } | NetEvent::RecoveryNotice { observer, .. } => {
            *observer
        }
    }
}

/// The schedule step that delivers `ev`.
fn step_for(ev: &NetEvent<Wire>) -> Step {
    match ev {
        NetEvent::Deliver { src, dst, .. } => Step::Deliver { src: *src, dst: *dst },
        NetEvent::FailureNotice { observer, crashed } => {
            Step::FailNotice { observer: *observer, crashed: *crashed }
        }
        NetEvent::RecoveryNotice { observer, recovered } => {
            Step::RecoveryNotice { observer: *observer, recovered: *recovered }
        }
    }
}

/// Build the lockstep engine configuration for one vote plan.
pub fn plan_config(n: usize, votes: &[bool], rule: TerminationRule) -> RunConfig {
    let mut config = RunConfig::lockstep(n);
    config.votes = votes.to_vec();
    config.rule = rule;
    config.txn_id = CHECK_TXN;
    config
}

/// Worker-thread count for an options value (0 = auto).
fn resolved_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
    } else {
        threads
    }
}

// ---------------------------------------------------------------------
// Shared exploration state
// ---------------------------------------------------------------------

/// Violated-oracle bits (per plan, OR over the plan's visited states —
/// order-independent).
const V_CONSISTENCY: u8 = 1;
const V_PREDICTION: u8 = 2;
const V_RECOVERY: u8 = 4;

fn violation_bit(oracle: &str) -> u8 {
    match oracle {
        "consistency" => V_CONSISTENCY,
        "prediction" => V_PREDICTION,
        _ => V_RECOVERY,
    }
}

/// One dedup entry: the deepest remaining depth the state was expanded
/// with, plus the edge statistics recomputed at that depth (`stats_depth`
/// guards against a shallower racing expansion publishing last).
#[derive(Clone, Copy)]
struct Entry {
    best: u32,
    stats_depth: u32,
    edges: u32,
    fused: bool,
    cut: bool,
}

/// Approximate resident cost of one hot `(u128, Entry)` map entry
/// (key + entry + table overhead), converting
/// [`CheckOptions::mem_budget`] into a spill trigger.
const HOT_ENTRY_COST: usize = 64;

/// On-disk payload width of a spilled [`Entry`].
const ENTRY_BYTES: usize = 16;

fn encode_entry(e: &Entry) -> [u8; ENTRY_BYTES] {
    let mut b = [0u8; ENTRY_BYTES];
    b[0..4].copy_from_slice(&e.best.to_le_bytes());
    b[4..8].copy_from_slice(&e.stats_depth.to_le_bytes());
    b[8..12].copy_from_slice(&e.edges.to_le_bytes());
    b[12] = u8::from(e.fused) | (u8::from(e.cut) << 1);
    b
}

fn decode_entry(b: &[u8; ENTRY_BYTES]) -> Entry {
    Entry {
        best: u32::from_le_bytes(b[0..4].try_into().expect("best")),
        stats_depth: u32::from_le_bytes(b[4..8].try_into().expect("stats_depth")),
        edges: u32::from_le_bytes(b[8..12].try_into().expect("edges")),
        fused: b[12] & 1 != 0,
        cut: b[12] & 2 != 0,
    }
}

/// Merge two spilled copies of the same state: the record expanded at
/// the deepest `stats_depth` carries the authoritative edge stats (tie →
/// the newer copy, mirroring the hot tier's `>=` publish guard), and
/// `best` is the monotone max of both.
fn combine_entries(older: &[u8; ENTRY_BYTES], newer: &[u8; ENTRY_BYTES]) -> [u8; ENTRY_BYTES] {
    let (o, n) = (decode_entry(older), decode_entry(newer));
    let mut r = if n.stats_depth >= o.stats_depth { n } else { o };
    r.best = o.best.max(n.best);
    encode_entry(&r)
}

/// Per-plan stats folded once the plan's last task finishes.
#[derive(Default)]
struct PlanStats {
    distinct: usize,
    edges: u64,
    fused: u64,
    cut: bool,
    /// External-memory activity of this plan's store (all zero without a
    /// budget) — out-of-band reporting only.
    spill: SpillStats,
}

/// Per-vote-plan shared exploration state. The fingerprint shards are
/// freed (folded into [`PlanStats`]) as soon as the plan's outstanding
/// task count hits zero, so peak memory tracks the plans in flight, not
/// the whole plan set.
struct PlanShared {
    shards: Vec<Mutex<HashMap<u128, Entry>>>,
    /// The cold tier: sorted run files the hot shards spill into when a
    /// `mem_budget` is set. Lock order: a spiller holds *all* shard locks
    /// (ascending) before taking the write lock; a prober holds exactly
    /// one shard lock before taking the read lock — no cycle is possible,
    /// and an entry is never in neither tier, so membership (and the
    /// `inserted` cap counting) stays exact.
    store: RwLock<RunSet<ENTRY_BYTES>>,
    /// Distinct states inserted (drives the per-plan `max_states` valve).
    inserted: AtomicUsize,
    /// Outstanding tasks of this plan (seeded tasks + donations).
    pending: AtomicUsize,
    /// The state cap cut this plan short.
    cap_hit: AtomicBool,
    /// OR of [`violation_bit`]s over the plan's visited states.
    violated: AtomicU8,
    /// Some non-violating quiescent state of this plan has a blocked
    /// operational site.
    blocking: AtomicBool,
    folded: Mutex<Option<PlanStats>>,
}

impl PlanShared {
    fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            store: RwLock::new(RunSet::new()),
            inserted: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            cap_hit: AtomicBool::new(false),
            violated: AtomicU8::new(0),
            blocking: AtomicBool::new(false),
            folded: Mutex::new(None),
        }
    }

    /// Sum the shard entries — merged against any spilled runs, each
    /// state counted once with its deepest-expansion stats — into the
    /// final per-plan stats and free the maps. Called exactly once, after
    /// the plan's last task finished. `hot_bytes` is the global hot-tier
    /// gauge to release the drained entries from.
    fn fold(&self, hot_bytes: &AtomicUsize) {
        let mut stats =
            PlanStats { cut: self.cap_hit.load(Ordering::Acquire), ..Default::default() };
        let mut tally = |e: &Entry| {
            stats.distinct += 1;
            stats.edges += u64::from(e.edges);
            stats.fused += u64::from(e.fused);
            stats.cut |= e.cut;
        };
        let mut hot: Vec<(u128, Entry)> = Vec::new();
        for shard in &self.shards {
            let map = std::mem::take(&mut *shard.lock().expect("shard poisoned"));
            hot.extend(map);
        }
        hot_bytes.fetch_sub(hot.len() * HOT_ENTRY_COST, Ordering::Relaxed);
        let store = self.store.read().expect("store poisoned");
        if store.run_count() == 0 {
            for (_, e) in &hot {
                tally(e);
            }
        } else {
            // Two-pointer merge of the sorted hot drain against the k-way
            // merged runs: a state present in both tiers (spilled, then
            // re-expanded hot) is combined, hot side newest.
            hot.sort_unstable_by_key(|&(fp, _)| fp);
            let mut hi = 0usize;
            store
                .for_each_merged(combine_entries, |key, payload| {
                    while hi < hot.len() && hot[hi].0 < key {
                        tally(&hot[hi].1);
                        hi += 1;
                    }
                    let mut e = decode_entry(&payload);
                    if hi < hot.len() && hot[hi].0 == key {
                        let merged = combine_entries(&payload, &encode_entry(&hot[hi].1));
                        e = decode_entry(&merged);
                        hi += 1;
                    }
                    tally(&e);
                })
                .unwrap_or_else(|e| panic!("external-memory fold failed: {e}"));
            while hi < hot.len() {
                tally(&hot[hi].1);
                hi += 1;
            }
        }
        stats.spill = store.stats();
        *self.folded.lock().expect("fold poisoned") = Some(stats);
    }
}

/// One unit of queued work: apply `action` to `runner` (already at
/// `path`, with `depth_left`/`budgets` remaining) and exhaust the
/// resulting subtree.
struct Task<'a> {
    plan: usize,
    runner: Runner<'a>,
    path: Vec<Step>,
    depth_left: u32,
    budgets: Budgets,
    action: Action,
}

struct Shared<'a> {
    protocol: &'a Protocol,
    analysis: &'a Analysis,
    opts: CheckOptions,
    shard_mask: usize,
    plan_shared: Vec<PlanShared>,
    queue: Mutex<VecDeque<Task<'a>>>,
    available: Condvar,
    /// Workers currently blocked on the queue — the donation signal.
    idle: AtomicUsize,
    /// Unfinished tasks over all plans; 0 = exploration complete.
    outstanding: AtomicUsize,
    done: AtomicBool,
    // Progress counters (reporting only; final stats come from the
    // per-plan folds).
    plans_done: AtomicUsize,
    distinct: AtomicUsize,
    expansions: AtomicU64,
    /// Approximate bytes held by all plans' hot fingerprint tiers — the
    /// spill trigger (only maintained when a `mem_budget` is set).
    hot_bytes: AtomicUsize,
    /// Runs spilled so far, over all plans (progress reporting).
    spill_runs: AtomicU64,
}

impl<'a> Shared<'a> {
    /// Mark one task of `plan` finished; fold the plan when it was the
    /// last one and flip the global done flag when nothing is left.
    fn finish_task(&self, plan: usize) {
        let ps = &self.plan_shared[plan];
        if ps.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            ps.fold(&self.hot_bytes);
            self.plans_done.fetch_add(1, Ordering::Relaxed);
        }
        if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            let guard = self.queue.lock().expect("queue poisoned");
            self.done.store(true, Ordering::Release);
            drop(guard);
            self.available.notify_all();
        }
    }
}

// ---------------------------------------------------------------------
// The stepper: action enumeration and application, shared by the
// parallel sweep and the canonical witness search
// ---------------------------------------------------------------------

/// Enumerates and applies scheduler actions while maintaining the current
/// schedule path and the per-walker oracle accumulators.
struct Stepper<'a> {
    protocol: &'a Protocol,
    oracles: Oracles<'a>,
    path: Vec<Step>,
}

impl<'a> Stepper<'a> {
    fn new(protocol: &'a Protocol, analysis: &'a Analysis) -> Self {
        Self { protocol, oracles: Oracles::new(protocol, analysis, CHECK_TXN), path: Vec::new() }
    }

    /// All branchable actions in `runner` under remaining budgets `b`, in
    /// deterministic order.
    fn enumerate(&self, runner: &Runner<'a>, b: Budgets) -> Vec<Action> {
        let pending = runner.pending_events();
        // First (head) and last (tail) pending event per channel, in
        // ascending send order.
        let mut channels: Vec<Channel> = Vec::new();
        for (_, ev) in &pending {
            let ch = channel_of(ev);
            if !channels.contains(&ch) {
                channels.push(ch);
            }
        }
        channels.sort_unstable();

        // Fusion is sound only when no scheduler-injected action can
        // interleave between the fused deliveries: every fault budget must
        // be spent AND no standing suspicion remain (Unsuspect actions are
        // budget-free, so they exist as long as any suspicion does).
        let no_faults = b.faults == 0
            && b.recoveries == 0
            && b.drops == 0
            && b.suspicions == 0
            && runner.sites().iter().all(|s| s.suspects.is_empty());
        if no_faults && !pending.is_empty() {
            let mut dests: Vec<usize> = pending.iter().map(|(_, ev)| dest_of(ev)).collect();
            dests.sort_unstable();
            let distinct = dests.windows(2).all(|w| w[0] != w[1]);
            if distinct {
                // Every pending event is its channel's head and targets
                // its own site: all interleavings commute, and no fault
                // can intervene — fire them all as one macro-step.
                return vec![Action::Fuse(channels)];
            }
        }

        // Events to a down site are still fired (the dead site simply
        // never reads them) — leaving them pending would stall quiescence
        // detection forever.
        let mut actions: Vec<Action> = channels.iter().map(|&ch| Action::Fire(ch)).collect();
        if b.drops > 0 {
            for &ch in &channels {
                if let Channel::Link(src, dst) = ch {
                    actions.push(Action::DropTail { src, dst });
                }
            }
        }
        if b.faults > 0 {
            for (site, s) in runner.sites().iter().enumerate() {
                if !s.is_up() {
                    continue;
                }
                // Quorum-based protocols promise nonblocking only against
                // acceptor crashes; participant crashes are outside the
                // verified fault model, so the budget is spent on the
                // crashes the quorum must absorb.
                if self.protocol.quorum().is_some() && !self.protocol.is_acceptor(site) {
                    continue;
                }
                let in_flight = pending
                    .iter()
                    .filter(|(_, ev)| matches!(ev, NetEvent::Deliver { src, .. } if *src == site))
                    .count();
                for lose in 0..=in_flight {
                    actions.push(Action::CrashSuffix { site, lose });
                }
            }
        }
        if b.recoveries > 0 {
            for (site, s) in runner.sites().iter().enumerate() {
                if !s.is_up() {
                    actions.push(Action::Recover { site });
                }
            }
        }
        if b.suspicions > 0 {
            for (observer, s) in runner.sites().iter().enumerate() {
                if !s.is_up() {
                    continue;
                }
                for (peer, p) in runner.sites().iter().enumerate() {
                    // Suspicion of a *live, in-view* peer is the interesting
                    // (imperfect-detector) choice: suspecting a down or
                    // already-suspected peer adds nothing the crash notices
                    // don't cover.
                    if peer == observer || !p.is_up() || !s.view[peer] || s.suspects.contains(&peer)
                    {
                        continue;
                    }
                    // Quorum-based protocols promise nonblocking only
                    // against acceptor failures; mirror the CrashSuffix
                    // guard and spend the budget on acceptor suspicions.
                    if self.protocol.quorum().is_some() && !self.protocol.is_acceptor(peer) {
                        continue;
                    }
                    actions.push(Action::Suspect { observer, peer });
                }
            }
        }
        // Revocations: always explorable while a suspicion stands
        // (budget-free — see `CheckOptions::suspicions`).
        for (observer, s) in runner.sites().iter().enumerate() {
            if !s.is_up() {
                continue;
            }
            for &peer in &s.suspects {
                if runner.sites()[peer].is_up() {
                    actions.push(Action::Unsuspect { observer, peer });
                }
            }
        }
        actions
    }

    /// Apply one action, appending its schedule steps to the path and
    /// returning the remaining budgets. `Err(detail)` means the recovery
    /// oracle rejected a `Recover` (the path ends at the rejected step).
    fn apply(
        &mut self,
        runner: &mut Runner<'a>,
        action: &Action,
        b: Budgets,
    ) -> Result<Budgets, String> {
        let b2 = self.apply_inner(runner, action, b)?;
        // Events addressed to a down site are pure no-ops (the engine
        // discards them before touching any state), and once the recovery
        // budget is spent the site stays down forever — so fire them
        // eagerly instead of branching over every position they could
        // occupy in the schedule. Recovering sites are *not* drained:
        // their protocol traffic is live.
        if b2.recoveries == 0 {
            loop {
                let dead = runner.pending_events().into_iter().find_map(|(seq, ev)| {
                    (!runner.sites()[dest_of(&ev)].is_up()).then(|| (seq, step_for(&ev)))
                });
                let Some((seq, step)) = dead else { break };
                self.path.push(step);
                runner.fire_scheduled(seq);
            }
        }
        Ok(b2)
    }

    fn apply_inner(
        &mut self,
        runner: &mut Runner<'a>,
        action: &Action,
        b: Budgets,
    ) -> Result<Budgets, String> {
        match action {
            Action::Fire(ch) => {
                let (seq, ev) = channel_head(runner, *ch).expect("enumerated channel has a head");
                self.path.push(step_for(&ev));
                runner.fire_scheduled(seq);
                Ok(b)
            }
            Action::Fuse(chs) => {
                // Snapshot the heads first: a fired handler's new sends
                // must not join this macro-step.
                let heads: Vec<(u64, NetEvent<Wire>)> =
                    chs.iter().map(|&ch| channel_head(runner, ch).expect("head")).collect();
                for (seq, ev) in heads {
                    self.path.push(step_for(&ev));
                    runner.fire_scheduled(seq);
                }
                Ok(b)
            }
            Action::CrashSuffix { site, lose } => {
                self.path.push(Step::Crash { site: *site });
                // Identify the suffix before crashing: the notices the
                // crash schedules are not deliveries and never match, but
                // snapshotting first keeps the intent obvious.
                let mut sends: Vec<(u64, usize)> = runner
                    .pending_events()
                    .iter()
                    .filter_map(|(seq, ev)| match ev {
                        NetEvent::Deliver { src, dst, .. } if src == site => Some((*seq, *dst)),
                        _ => None,
                    })
                    .collect();
                runner.crash_now(*site);
                // Lose the `lose` most recent sends, newest first — each
                // is the current tail of its link, which is what the
                // `Drop` step replays.
                sends.sort_unstable_by_key(|&(seq, _)| std::cmp::Reverse(seq));
                for &(seq, dst) in sends.iter().take(*lose) {
                    self.path.push(Step::Drop { src: *site, dst });
                    runner.drop_scheduled(seq);
                }
                Ok(Budgets { faults: b.faults - 1, ..b })
            }
            Action::Recover { site } => {
                self.path.push(Step::Recover { site: *site });
                self.oracles.check_recovery(runner, *site)?;
                runner.recover_now(*site);
                Ok(Budgets { recoveries: b.recoveries - 1, ..b })
            }
            Action::DropTail { src, dst } => {
                self.path.push(Step::Drop { src: *src, dst: *dst });
                let (seq, _) =
                    channel_tail(runner, Channel::Link(*src, *dst)).expect("link has tail");
                runner.drop_scheduled(seq);
                Ok(Budgets { drops: b.drops - 1, ..b })
            }
            Action::Suspect { observer, peer } => {
                self.path.push(Step::Suspect { observer: *observer, peer: *peer });
                runner.suspect_now(*observer, *peer);
                Ok(Budgets { suspicions: b.suspicions - 1, ..b })
            }
            Action::Unsuspect { observer, peer } => {
                self.path.push(Step::Unsuspect { observer: *observer, peer: *peer });
                runner.unsuspect_now(*observer, *peer);
                Ok(b)
            }
        }
    }
}

/// One node of the explicit DFS stack: a state, its remaining depth and
/// budgets, and the (cost-filtered) actions not yet branched on.
struct Frame<'a> {
    runner: Runner<'a>,
    depth_left: u32,
    budgets: Budgets,
    actions: Vec<Action>,
    next: usize,
    /// `path.len()` at this node; truncating to it re-anchors the path
    /// before each sibling branch.
    mark: usize,
}

// ---------------------------------------------------------------------
// Phase 1: the parallel sweep
// ---------------------------------------------------------------------

struct Worker<'w, 'a> {
    shared: &'w Shared<'a>,
    stepper: Stepper<'a>,
    stack: Vec<Frame<'a>>,
    plan: usize,
    /// Witnessed-state bitmaps, one per vote plan this worker touched.
    /// Kept per plan (not merged into the worker's oracles) so a
    /// state-cap-truncated plan's bitmap can be replaced wholesale by the
    /// canonical redo's.
    wit: HashMap<usize, Witnessed>,
}

impl<'w, 'a> Worker<'w, 'a> {
    fn new(shared: &'w Shared<'a>) -> Self {
        Self {
            shared,
            stepper: Stepper::new(shared.protocol, shared.analysis),
            stack: Vec::new(),
            plan: 0,
            wit: HashMap::new(),
        }
    }

    fn run(mut self) -> HashMap<usize, Witnessed> {
        while let Some(task) = self.next_task() {
            let plan = task.plan;
            self.run_task(task);
            self.shared.finish_task(plan);
        }
        self.wit
    }

    fn next_task(&self) -> Option<Task<'a>> {
        let mut q = self.shared.queue.lock().expect("queue poisoned");
        loop {
            if let Some(t) = q.pop_front() {
                return Some(t);
            }
            if self.shared.done.load(Ordering::Acquire) {
                return None;
            }
            self.shared.idle.fetch_add(1, Ordering::Release);
            q = self.shared.available.wait(q).expect("queue poisoned");
            self.shared.idle.fetch_sub(1, Ordering::Release);
        }
    }

    fn run_task(&mut self, task: Task<'a>) {
        self.plan = task.plan;
        self.stepper.path = task.path;
        let mut runner = task.runner;
        let cost = task.action.cost();
        match self.stepper.apply(&mut runner, &task.action, task.budgets) {
            Err(_) => {
                self.flag_violation("recovery");
            }
            Ok(b2) => {
                self.visit(runner, task.depth_left - cost, b2);
                self.drain_stack();
            }
        }
        self.stepper.path.clear();
        self.stack.clear();
    }

    fn flag_violation(&self, oracle: &str) {
        self.shared.plan_shared[self.plan]
            .violated
            .fetch_or(violation_bit(oracle), Ordering::AcqRel);
    }

    /// Exhaust the explicit DFS stack, donating the shallowest untried
    /// branch whenever another worker is starved.
    fn drain_stack(&mut self) {
        loop {
            self.maybe_donate();
            let step = {
                let Some(f) = self.stack.last_mut() else { break };
                if f.next >= f.actions.len() {
                    None
                } else {
                    // Re-anchor the path before each sibling branch.
                    self.stepper.path.truncate(f.mark);
                    let action = f.actions[f.next].clone();
                    f.next += 1;
                    Some((action, f.depth_left, f.budgets, f.runner.clone()))
                }
            };
            match step {
                None => {
                    let f = self.stack.pop().expect("checked non-empty");
                    self.stepper.path.truncate(f.mark);
                }
                Some((action, depth_left, budgets, mut next)) => {
                    let cost = action.cost();
                    match self.stepper.apply(&mut next, &action, budgets) {
                        Err(_) => self.flag_violation("recovery"),
                        Ok(b2) => self.visit(next, depth_left - cost, b2),
                    }
                }
            }
        }
    }

    /// Hand the shallowest untried branch of this stack to an idle worker
    /// as a fresh task. Donation only reorders the traversal, which no
    /// reported quantity depends on.
    fn maybe_donate(&mut self) {
        if self.shared.idle.load(Ordering::Relaxed) == 0 {
            return;
        }
        let top = self.stack.len().wrapping_sub(1);
        for (i, f) in self.stack.iter_mut().enumerate() {
            if f.next >= f.actions.len() {
                continue;
            }
            if i == top && f.actions.len() - f.next <= 1 {
                // Keep the last branch of the top frame for ourselves —
                // donating it would just move this worker to the queue.
                return;
            }
            let action = f.actions[f.next].clone();
            f.next += 1;
            let task = Task {
                plan: self.plan,
                runner: f.runner.clone(),
                path: self.stepper.path[..f.mark].to_vec(),
                depth_left: f.depth_left,
                budgets: f.budgets,
                action,
            };
            let ps = &self.shared.plan_shared[self.plan];
            ps.pending.fetch_add(1, Ordering::AcqRel);
            self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
            self.shared.queue.lock().expect("queue poisoned").push_back(task);
            self.shared.available.notify_one();
            return;
        }
    }

    /// Observe one reached state, claim it in the plan's fingerprint
    /// store (hot tier, spilled runs consulted on a hot miss), and push
    /// its expansion frame if it survived dedup and the caps.
    fn visit(&mut self, runner: Runner<'a>, depth_left: u32, b: Budgets) {
        let ps = &self.shared.plan_shared[self.plan];
        let wit = self
            .wit
            .entry(self.plan)
            .or_insert_with(|| Witnessed::for_protocol(self.shared.protocol));
        if let Err((oracle, _detail)) = self.stepper.oracles.observe_state_in(wit, &runner) {
            // Violating states are never expanded (and never counted);
            // the canonical search re-derives the witness path.
            self.flag_violation(oracle);
            return;
        }
        if runner.net_quiescent() && !Oracles::blocked_sites(&runner).is_empty() {
            ps.blocking.store(true, Ordering::Release);
        }

        let budget = self.shared.opts.mem_budget;
        let fp = fingerprint128(&(runner.digest(), b.faults, b.recoveries, b.drops, b.suspicions));
        let shard = &ps.shards[(fp as usize) & self.shared.shard_mask];
        {
            let mut map = shard.lock().expect("shard poisoned");
            let hot = match map.get(&fp) {
                Some(e) if e.best >= depth_left => return,
                Some(_) => true,
                None => false,
            };
            // Hot miss with a budget: the entry may have been spilled.
            // One shard lock + the store read lock — see the lock-order
            // note on `PlanShared::store`.
            let mut carried: Option<Entry> = None;
            if !hot && budget > 0 {
                let spilled = self.shared.plan_shared[self.plan]
                    .store
                    .read()
                    .expect("store poisoned")
                    .get(fp)
                    .unwrap_or_else(|e| panic!("external-memory probe failed: {e}"));
                if let Some(payload) = spilled {
                    let e = decode_entry(&payload);
                    if e.best >= depth_left {
                        return;
                    }
                    carried = Some(e);
                }
            }
            if ps.inserted.load(Ordering::Relaxed) >= self.shared.opts.max_states {
                ps.cap_hit.store(true, Ordering::Release);
                return;
            }
            if hot {
                map.get_mut(&fp).expect("hot entry just probed").best = depth_left;
            } else {
                match carried {
                    // Deepening a spilled state: bring its record back
                    // hot (stats carried over; the fold's deepest-wins
                    // combine resolves the duplicate) without recounting
                    // it as an insert.
                    Some(mut e) => {
                        e.best = depth_left;
                        map.insert(fp, e);
                    }
                    None => {
                        map.insert(
                            fp,
                            Entry {
                                best: depth_left,
                                stats_depth: 0,
                                edges: 0,
                                fused: false,
                                cut: false,
                            },
                        );
                        ps.inserted.fetch_add(1, Ordering::Relaxed);
                        self.shared.distinct.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if budget > 0 {
                    self.shared.hot_bytes.fetch_add(HOT_ENTRY_COST, Ordering::Relaxed);
                }
            }
        }

        let mut actions = self.stepper.enumerate(&runner, b);
        if let Some(seed) = self.shared.opts.seed {
            if actions.len() > 1 {
                let rot = fingerprint128(&(seed, runner.digest(), depth_left)) as usize;
                let len = actions.len();
                actions.rotate_left(rot % len);
            }
        }
        // Edge stats at *this* depth; published under the stats_depth
        // guard so the deepest expansion's numbers win whatever order the
        // racing expansions finish in.
        let mut edges = 0u32;
        let mut fused = false;
        let mut cut = false;
        actions.retain(|a| {
            if a.cost() <= depth_left {
                edges += 1;
                fused |= matches!(a, Action::Fuse(_));
                true
            } else {
                cut = true;
                false
            }
        });
        {
            let mut map = shard.lock().expect("shard poisoned");
            match map.get_mut(&fp) {
                Some(e) => {
                    if depth_left >= e.stats_depth {
                        e.stats_depth = depth_left;
                        e.edges = edges;
                        e.fused = fused;
                        e.cut = cut;
                    }
                }
                // The claimed entry was spilled between the two critical
                // sections: publish the stats as a fresh hot record — the
                // fold's deepest-wins combine merges it with the spilled
                // copy, exactly like the in-RAM `>=` guard would have.
                None => {
                    map.insert(
                        fp,
                        Entry { best: depth_left, stats_depth: depth_left, edges, fused, cut },
                    );
                    if budget > 0 {
                        self.shared.hot_bytes.fetch_add(HOT_ENTRY_COST, Ordering::Relaxed);
                    }
                }
            }
        }
        if budget > 0 && self.shared.hot_bytes.load(Ordering::Relaxed) > budget {
            self.spill_plan();
        }
        self.progress_tick();
        if !actions.is_empty() {
            self.stack.push(Frame {
                mark: self.stepper.path.len(),
                runner,
                depth_left,
                budgets: b,
                actions,
                next: 0,
            });
        }
    }

    /// Drain the current plan's hot shards into one sorted run. All shard
    /// locks are taken in index order before the store write lock (see
    /// the lock-order note on `PlanShared::store`); racing spillers
    /// serialize here and the loser finds the shards already empty.
    fn spill_plan(&self) {
        let ps = &self.shared.plan_shared[self.plan];
        let mut guards: Vec<_> =
            ps.shards.iter().map(|s| s.lock().expect("shard poisoned")).collect();
        let mut entries: Vec<(u128, [u8; ENTRY_BYTES])> = Vec::new();
        for g in &mut guards {
            entries.extend(g.drain().map(|(fp, e)| (fp, encode_entry(&e))));
        }
        if entries.is_empty() {
            return;
        }
        let freed = entries.len() * HOT_ENTRY_COST;
        ps.store
            .write()
            .expect("store poisoned")
            .spill(entries, combine_entries)
            .unwrap_or_else(|e| panic!("external-memory spill failed: {e}"));
        self.shared.hot_bytes.fetch_sub(freed, Ordering::Relaxed);
        self.shared.spill_runs.fetch_add(1, Ordering::Relaxed);
    }

    fn progress_tick(&self) {
        let e = self.shared.expansions.fetch_add(1, Ordering::Relaxed) + 1;
        if e.is_multiple_of(1 << 16) {
            if let Some(hook) = self.shared.opts.progress {
                hook(&CheckProgress {
                    plans_done: self.shared.plans_done.load(Ordering::Relaxed),
                    plans_total: self.shared.plan_shared.len(),
                    distinct_states: self.shared.distinct.load(Ordering::Relaxed),
                    expansions: e,
                    spill_runs: self.shared.spill_runs.load(Ordering::Relaxed),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Phase 2: the canonical witness search
// ---------------------------------------------------------------------

/// What the canonical search is looking for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Target {
    Violation,
    Blocking,
}

/// Serial, canonical-order (unseeded) explicit-stack DFS over one vote
/// plan, stopping at the first state (or rejected `Recover` edge, for
/// [`Target::Violation`]) exhibiting the target. Because the visited set
/// is order-independent, a plan flagged by the parallel sweep is
/// guaranteed to yield a witness here — unless the `max_states` valve
/// truncated the sweep, in which case this search gives up at the same
/// cap and returns `None`.
struct Search<'a, 'o> {
    stepper: Stepper<'a>,
    seen: HashMap<u128, u32>,
    stack: Vec<Frame<'a>>,
    opts: &'o CheckOptions,
    target: Target,
}

type WitnessFound = Option<(&'static str, String, Vec<Step>)>;

impl<'a> Search<'a, '_> {
    /// Shared visit logic for the root and every expanded child.
    fn visit(&mut self, runner: Runner<'a>, depth_left: u32, b: Budgets) -> WitnessFound {
        if let Err((oracle, detail)) = self.stepper.oracles.observe_state(&runner) {
            return match self.target {
                Target::Violation => Some((oracle, detail, self.stepper.path.clone())),
                // A violating state is pruned, exactly as in the sweep —
                // blocking candidates exclude it.
                Target::Blocking => None,
            };
        }
        if self.target == Target::Blocking
            && runner.net_quiescent()
            && !Oracles::blocked_sites(&runner).is_empty()
        {
            return Some(("", String::new(), self.stepper.path.clone()));
        }
        let fp = fingerprint128(&(runner.digest(), b.faults, b.recoveries, b.drops, b.suspicions));
        if let Some(&best) = self.seen.get(&fp) {
            if best >= depth_left {
                return None;
            }
        }
        if self.seen.len() >= self.opts.max_states {
            return None;
        }
        self.seen.insert(fp, depth_left);
        let mut actions = self.stepper.enumerate(&runner, b);
        actions.retain(|a| a.cost() <= depth_left);
        if !actions.is_empty() {
            self.stack.push(Frame {
                mark: self.stepper.path.len(),
                runner,
                depth_left,
                budgets: b,
                actions,
                next: 0,
            });
        }
        None
    }

    fn run(&mut self, root: Runner<'a>, depth: u32, budgets: Budgets) -> WitnessFound {
        if let Some(w) = self.visit(root, depth, budgets) {
            return Some(w);
        }
        loop {
            let step = {
                let f = self.stack.last_mut()?;
                if f.next >= f.actions.len() {
                    None
                } else {
                    self.stepper.path.truncate(f.mark);
                    let action = f.actions[f.next].clone();
                    f.next += 1;
                    Some((action, f.depth_left, f.budgets, f.runner.clone()))
                }
            };
            match step {
                None => {
                    let f = self.stack.pop().expect("checked non-empty");
                    self.stepper.path.truncate(f.mark);
                }
                Some((action, depth_left, budgets, mut next)) => {
                    let cost = action.cost();
                    match self.stepper.apply(&mut next, &action, budgets) {
                        Err(detail) => {
                            if self.target == Target::Violation {
                                return Some(("recovery", detail, self.stepper.path.clone()));
                            }
                        }
                        Ok(b2) => {
                            if let Some(w) = self.visit(next, depth_left - cost, b2) {
                                return Some(w);
                            }
                        }
                    }
                }
            }
        }
    }
}

fn canonical_witness<'a>(
    protocol: &'a Protocol,
    analysis: &'a Analysis,
    opts: &CheckOptions,
    votes: &[bool],
    target: Target,
) -> WitnessFound {
    let budgets = Budgets {
        faults: opts.faults,
        recoveries: opts.recoveries,
        drops: opts.drops,
        suspicions: opts.suspicions,
    };
    let root = Runner::new(protocol, analysis, plan_config(protocol.n_sites(), votes, opts.rule));
    let mut search = Search {
        stepper: Stepper::new(protocol, analysis),
        seen: HashMap::new(),
        stack: Vec::new(),
        opts,
        target,
    };
    search.run(root, opts.depth, budgets)
}

// ---------------------------------------------------------------------
// Phase 1b: canonical redo of state-cap-truncated plans
// ---------------------------------------------------------------------

/// Serial canonical-order re-exploration of one vote plan under the same
/// `max_states` cap — the deterministic replacement for a plan whose
/// parallel sweep tripped (or filled) the cap. Mirrors `Worker::visit`
/// exactly (prune → cap → insert/update, stats at the deepest
/// expansion, violating states never expanded) minus the sharing and
/// minus the seed rotation, so its results depend only on (protocol,
/// options) — never on thread count or seed. The dedup map is held in
/// RAM: it is bounded by `max_states` entries, the same bound the sweep's
/// hot+cold tiers enforced together.
struct Redo<'a> {
    stepper: Stepper<'a>,
    map: HashMap<u128, Entry>,
    stack: Vec<Frame<'a>>,
    max_states: usize,
    cap_hit: bool,
    violated: u8,
    blocking: bool,
    wit: Witnessed,
}

impl<'a> Redo<'a> {
    fn visit(&mut self, runner: Runner<'a>, depth_left: u32, b: Budgets) {
        if let Err((oracle, _detail)) =
            self.stepper.oracles.observe_state_in(&mut self.wit, &runner)
        {
            self.violated |= violation_bit(oracle);
            return;
        }
        if runner.net_quiescent() && !Oracles::blocked_sites(&runner).is_empty() {
            self.blocking = true;
        }
        let fp = fingerprint128(&(runner.digest(), b.faults, b.recoveries, b.drops, b.suspicions));
        let known = match self.map.get(&fp) {
            Some(e) if e.best >= depth_left => return,
            Some(_) => true,
            None => false,
        };
        if self.map.len() >= self.max_states {
            self.cap_hit = true;
            return;
        }
        if known {
            self.map.get_mut(&fp).expect("entry just probed").best = depth_left;
        } else {
            self.map.insert(
                fp,
                Entry { best: depth_left, stats_depth: 0, edges: 0, fused: false, cut: false },
            );
        }
        // Canonical enumeration order — deliberately no seed rotation, so
        // a truncated report is also independent of `--seed`.
        let mut actions = self.stepper.enumerate(&runner, b);
        let mut edges = 0u32;
        let mut fused = false;
        let mut cut = false;
        actions.retain(|a| {
            if a.cost() <= depth_left {
                edges += 1;
                fused |= matches!(a, Action::Fuse(_));
                true
            } else {
                cut = true;
                false
            }
        });
        let e = self.map.get_mut(&fp).expect("entry just claimed");
        if depth_left >= e.stats_depth {
            e.stats_depth = depth_left;
            e.edges = edges;
            e.fused = fused;
            e.cut = cut;
        }
        if !actions.is_empty() {
            self.stack.push(Frame {
                mark: self.stepper.path.len(),
                runner,
                depth_left,
                budgets: b,
                actions,
                next: 0,
            });
        }
    }

    fn drain(&mut self) {
        loop {
            let step = {
                let Some(f) = self.stack.last_mut() else { break };
                if f.next >= f.actions.len() {
                    None
                } else {
                    self.stepper.path.truncate(f.mark);
                    let action = f.actions[f.next].clone();
                    f.next += 1;
                    Some((action, f.depth_left, f.budgets, f.runner.clone()))
                }
            };
            match step {
                None => {
                    let f = self.stack.pop().expect("checked non-empty");
                    self.stepper.path.truncate(f.mark);
                }
                Some((action, depth_left, budgets, mut next)) => {
                    let cost = action.cost();
                    match self.stepper.apply(&mut next, &action, budgets) {
                        Err(_) => self.violated |= V_RECOVERY,
                        Ok(b2) => self.visit(next, depth_left - cost, b2),
                    }
                }
            }
        }
    }
}

/// Run the canonical capped sweep for one plan, returning its
/// deterministic `(stats, violated bits, blocking flag, witnessed
/// bitmap)` — everything the parallel sweep produced
/// scheduling-dependently once the cap was in play.
fn canonical_capped_sweep<'a>(
    protocol: &'a Protocol,
    analysis: &'a Analysis,
    opts: &CheckOptions,
    votes: &[bool],
) -> (PlanStats, u8, bool, Witnessed) {
    let budgets = Budgets {
        faults: opts.faults,
        recoveries: opts.recoveries,
        drops: opts.drops,
        suspicions: opts.suspicions,
    };
    let root = Runner::new(protocol, analysis, plan_config(protocol.n_sites(), votes, opts.rule));
    let mut redo = Redo {
        stepper: Stepper::new(protocol, analysis),
        map: HashMap::new(),
        stack: Vec::new(),
        max_states: opts.max_states,
        cap_hit: false,
        violated: 0,
        blocking: false,
        wit: Witnessed::for_protocol(protocol),
    };
    redo.visit(root, opts.depth, budgets);
    redo.drain();
    let mut stats = PlanStats { cut: redo.cap_hit, ..Default::default() };
    for e in redo.map.values() {
        stats.distinct += 1;
        stats.edges += u64::from(e.edges);
        stats.fused += u64::from(e.fused);
        stats.cut |= e.cut;
    }
    (stats, redo.violated, redo.blocking, redo.wit)
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

/// Explore every schedule of `protocol` within `opts`' budgets, for every
/// vote plan (or the one plan `opts.vote_plan` fixes), fanning the
/// subtrees out over `opts.threads` workers. See the module docs for the
/// determinism contract.
pub fn explore<'a>(
    protocol: &'a Protocol,
    analysis: &'a Analysis,
    opts: &CheckOptions,
) -> Exploration<'a> {
    let n = protocol.n_sites();
    let plans: Vec<Vec<bool>> = match &opts.vote_plan {
        Some(p) => vec![p.clone()],
        // All 2^n plans, all-yes first (the plan where commit — and hence
        // commit-blocking — lives). Quorum-based protocols enumerate over
        // participants only: acceptor transitions are untagged (acceptors
        // hold no vote), so acceptor plan bits would only replicate each
        // execution 2^(2f+1) times.
        None => {
            let np = protocol.n_participants();
            (0..1u32 << np)
                .map(|bits| (0..n).map(|i| i >= np || bits & (1 << i) == 0).collect())
                .collect()
        }
    };

    let threads = resolved_threads(opts.threads);
    let shards = (threads * 4).next_power_of_two().min(64);
    let shared = Shared {
        protocol,
        analysis,
        opts: opts.clone(),
        shard_mask: shards - 1,
        plan_shared: (0..plans.len()).map(|_| PlanShared::new(shards)).collect(),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        idle: AtomicUsize::new(0),
        outstanding: AtomicUsize::new(0),
        done: AtomicBool::new(false),
        plans_done: AtomicUsize::new(0),
        distinct: AtomicUsize::new(0),
        expansions: AtomicU64::new(0),
        hot_bytes: AtomicUsize::new(0),
        spill_runs: AtomicU64::new(0),
    };
    let budgets = Budgets {
        faults: opts.faults,
        recoveries: opts.recoveries,
        drops: opts.drops,
        suspicions: opts.suspicions,
    };

    // Seed: expand each plan's root on this thread (observing it and
    // claiming it in the plan's map), then queue one task per root
    // action. The seeder reuses the worker machinery, so root handling
    // and inner-node handling cannot drift apart.
    let mut seeder = Worker::new(&shared);
    {
        let mut queue = shared.queue.lock().expect("queue poisoned");
        for (idx, votes) in plans.iter().enumerate() {
            seeder.plan = idx;
            let root = Runner::new(protocol, analysis, plan_config(n, votes, opts.rule));
            seeder.visit(root, opts.depth, budgets);
            match seeder.stack.pop() {
                Some(f) => {
                    let k = f.actions.len();
                    shared.plan_shared[idx].pending.store(k, Ordering::Release);
                    shared.outstanding.fetch_add(k, Ordering::AcqRel);
                    for action in f.actions {
                        queue.push_back(Task {
                            plan: idx,
                            runner: f.runner.clone(),
                            path: Vec::new(),
                            depth_left: f.depth_left,
                            budgets: f.budgets,
                            action,
                        });
                    }
                }
                // Root is terminal (or violating): the plan is already
                // fully explored.
                None => {
                    shared.plan_shared[idx].fold(&shared.hot_bytes);
                    shared.plans_done.fetch_add(1, Ordering::Relaxed);
                }
            }
            seeder.stack.clear();
            seeder.stepper.path.clear();
        }
        if shared.outstanding.load(Ordering::Acquire) == 0 {
            shared.done.store(true, Ordering::Release);
        }
    }
    let seeder_wit = seeder.wit;
    let mut oracles = seeder.stepper.oracles;

    let worker_wits: Vec<HashMap<usize, Witnessed>> = std::thread::scope(|s| {
        let handles: Vec<_> =
            (0..threads).map(|_| s.spawn(|| Worker::new(&shared).run())).collect();
        handles.into_iter().map(|h| h.join().expect("explorer worker panicked")).collect()
    });

    // Per-plan witnessed bitmaps: the seeder's and every worker's
    // contributions, OR'd (order-independent).
    let mut plan_wit: Vec<Witnessed> =
        plans.iter().map(|_| Witnessed::for_protocol(protocol)).collect();
    for (idx, w) in &seeder_wit {
        plan_wit[*idx].merge(w);
    }
    for m in &worker_wits {
        for (idx, w) in m {
            plan_wit[*idx].merge(w);
        }
    }

    // Phase 1b: every plan within the state cap's reach is redone
    // serially in canonical order, and its scheduling-dependent results
    // (stats, violated/blocking flags, witnessed bitmap) are replaced
    // wholesale. The trigger — the plan's fixpoint holds at least
    // `max_states` states — is a property of (protocol, options), not of
    // the schedule, so *whether* a redo runs is itself deterministic:
    // `cap_hit` covers every schedule that tripped the cap, and the
    // `inserted` test covers the knife-edge fixpoint == max_states
    // schedules that filled the map without tripping it.
    for (idx, ps) in shared.plan_shared.iter().enumerate() {
        let capped = ps.cap_hit.load(Ordering::Acquire)
            || ps.inserted.load(Ordering::Acquire) >= opts.max_states;
        if !capped {
            continue;
        }
        let (redo_stats, violated, blocking, wit) =
            canonical_capped_sweep(protocol, analysis, opts, &plans[idx]);
        let mut folded = ps.folded.lock().expect("fold poisoned");
        let spill = folded.take().expect("plan not folded").spill;
        *folded = Some(PlanStats { spill, ..redo_stats });
        ps.violated.store(violated, Ordering::Release);
        ps.blocking.store(blocking, Ordering::Release);
        plan_wit[idx] = wit;
    }

    for w in &plan_wit {
        oracles.absorb(w);
    }

    // Assemble the order-independent stats from the per-plan folds.
    let mut stats = ExploreStats { plans: plans.len(), ..ExploreStats::default() };
    let mut spill = SpillStats::default();
    for ps in &shared.plan_shared {
        let folded = ps.folded.lock().expect("fold poisoned").take().expect("plan not folded");
        stats.distinct_states += folded.distinct;
        stats.actions += folded.edges;
        stats.fused += folded.fused;
        stats.truncated |= folded.cut;
        spill.runs_written += folded.spill.runs_written;
        spill.bytes_written += folded.spill.bytes_written;
        spill.merge_passes += folded.spill.merge_passes;
    }

    // Phase 2: canonical witnesses for the least flagged plans.
    let violation =
        shared.plan_shared.iter().position(|ps| ps.violated.load(Ordering::Acquire) != 0).map(
            |idx| {
                let votes = plans[idx].clone();
                match canonical_witness(protocol, analysis, opts, &votes, Target::Violation) {
                    Some((oracle, detail, path)) => (oracle, detail, votes, path),
                    // Defensive: an uncapped sweep's visited set equals this
                    // search's, and a capped plan's flags come from the
                    // canonical redo, whose traversal this search repeats —
                    // so a flagged plan always yields a witness here.
                    None => {
                        let bits = shared.plan_shared[idx].violated.load(Ordering::Acquire);
                        let oracle = if bits & V_CONSISTENCY != 0 {
                            "consistency"
                        } else if bits & V_PREDICTION != 0 {
                            "prediction"
                        } else {
                            "recovery"
                        };
                        let detail = "violation observed during a state-cap-truncated \
                                  exploration; raise --max-states for a replayable witness"
                            .to_string();
                        (oracle, detail, votes, Vec::new())
                    }
                }
            },
        );
    let blocking_witness =
        shared.plan_shared.iter().position(|ps| ps.blocking.load(Ordering::Acquire)).and_then(
            |idx| {
                let votes = plans[idx].clone();
                canonical_witness(protocol, analysis, opts, &votes, Target::Blocking)
                    .map(|(_, _, path)| (votes, path))
            },
        );

    Exploration { oracles, stats, blocking_witness, violation, spill }
}
