//! Termination decisions over state *classes* — the engine-facing wrapper
//! around [`nbc_core::termination::class_decisions`], keyed by the `u8`
//! class codes that travel in WAL records and wire messages.

use std::collections::BTreeMap;

use nbc_core::{Analysis, Decision, Protocol};

/// Precomputed class → decision table for one protocol.
#[derive(Debug, Clone)]
pub struct ClassDecisions {
    table: BTreeMap<u8, Decision>,
}

impl ClassDecisions {
    /// Build the table from an analysis (delegates to
    /// `nbc_core::termination::class_decisions`).
    pub fn build(protocol: &Protocol, analysis: &Analysis) -> Self {
        let table = nbc_core::termination::class_decisions(protocol, analysis)
            .into_iter()
            .map(|(class, d)| (crate::class_map::encode_class(class), d))
            .collect();
        Self { table }
    }

    /// Decision for one class code.
    ///
    /// Unknown codes (possible when a custom protocol aligns to a class
    /// the analysis never saw) conservatively block.
    pub fn decide(&self, class_code: u8) -> Decision {
        self.table.get(&class_code).copied().unwrap_or(Decision::Blocked)
    }

    /// Cooperative decision over a set of class codes: any committed →
    /// commit; any aborted → abort; any abort-deciding class → abort; any
    /// commit-deciding class → commit; otherwise blocked.
    pub fn decide_cooperative(&self, codes: impl IntoIterator<Item = u8>) -> Decision {
        use nbc_storage::recovery::class_codes;
        let codes: Vec<u8> = codes.into_iter().collect();
        assert!(!codes.is_empty(), "cooperative decision needs at least one state");
        if codes.contains(&class_codes::COMMITTED) {
            return Decision::Commit;
        }
        if codes.contains(&class_codes::ABORTED) {
            return Decision::Abort;
        }
        if codes.iter().any(|&c| self.decide(c) == Decision::Abort) {
            return Decision::Abort;
        }
        if codes.iter().any(|&c| self.decide(c) == Decision::Commit) {
            return Decision::Commit;
        }
        Decision::Blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbc_core::protocols::{central_2pc, central_3pc, decentralized_3pc};
    use nbc_storage::recovery::class_codes::*;

    #[test]
    fn three_pc_table_matches_paper() {
        for p in [central_3pc(3), decentralized_3pc(3)] {
            let a = Analysis::build(&p).unwrap();
            let t = ClassDecisions::build(&p, &a);
            assert_eq!(t.decide(INITIAL), Decision::Abort, "{}", p.name);
            assert_eq!(t.decide(WAIT), Decision::Abort, "{}", p.name);
            assert_eq!(t.decide(PREPARED), Decision::Commit, "{}", p.name);
            assert_eq!(t.decide(ABORTED), Decision::Abort, "{}", p.name);
            assert_eq!(t.decide(COMMITTED), Decision::Commit, "{}", p.name);
        }
    }

    #[test]
    fn two_pc_wait_blocks() {
        let p = central_2pc(3);
        let a = Analysis::build(&p).unwrap();
        let t = ClassDecisions::build(&p, &a);
        assert_eq!(t.decide(WAIT), Decision::Blocked);
        assert_eq!(t.decide(INITIAL), Decision::Abort);
    }

    #[test]
    fn cooperative_unblocks_with_knowledge() {
        let p = central_2pc(3);
        let a = Analysis::build(&p).unwrap();
        let t = ClassDecisions::build(&p, &a);
        assert_eq!(t.decide_cooperative([WAIT, WAIT]), Decision::Blocked);
        assert_eq!(t.decide_cooperative([WAIT, COMMITTED]), Decision::Commit);
        assert_eq!(t.decide_cooperative([WAIT, ABORTED]), Decision::Abort);
        assert_eq!(t.decide_cooperative([WAIT, INITIAL]), Decision::Abort);
    }

    #[test]
    fn unknown_class_blocks() {
        let p = central_3pc(2);
        let a = Analysis::build(&p).unwrap();
        let t = ClassDecisions::build(&p, &a);
        assert_eq!(t.decide(200), Decision::Blocked);
    }

    #[test]
    #[should_panic]
    fn cooperative_needs_input() {
        let p = central_3pc(2);
        let a = Analysis::build(&p).unwrap();
        let t = ClassDecisions::build(&p, &a);
        let _ = t.decide_cooperative([]);
    }
}
