//! Workload generators: the multi-site applications the paper's
//! introduction motivates.

use nbc_simnet::SimRng;

/// One data operation of a distributed transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read `key` at `site` (shared lock).
    Read {
        /// Site holding the key.
        site: usize,
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Write `key = value` at `site` (exclusive lock).
    Write {
        /// Site holding the key.
        site: usize,
        /// Key bytes.
        key: Vec<u8>,
        /// New value.
        value: Vec<u8>,
    },
}

impl Op {
    /// The site this operation touches.
    pub fn site(&self) -> usize {
        match self {
            Self::Read { site, .. } | Self::Write { site, .. } => *site,
        }
    }
}

/// A bank sharded across sites: account `acct<k>` lives at site
/// `k % n_sites`. Transfers debit one account and credit another —
/// exactly the two-site atomicity story. The conservation invariant
/// (total balance constant across committed state) holds iff the commit
/// protocol preserves atomicity.
#[derive(Debug, Clone)]
pub struct BankWorkload {
    /// Number of sites.
    pub n_sites: usize,
    /// Number of accounts.
    pub n_accounts: usize,
    /// Initial balance per account.
    pub initial_balance: i64,
    rng: SimRng,
}

impl BankWorkload {
    /// A workload with `n_accounts` accounts spread over `n_sites` sites.
    pub fn new(n_sites: usize, n_accounts: usize, initial_balance: i64, seed: u64) -> Self {
        assert!(n_sites >= 2 && n_accounts >= 2);
        Self { n_sites, n_accounts, initial_balance, rng: SimRng::seed_from_u64(seed) }
    }

    /// The site an account lives at.
    pub fn site_of(&self, acct: usize) -> usize {
        acct % self.n_sites
    }

    /// The key of an account.
    pub fn key_of(acct: usize) -> Vec<u8> {
        format!("acct{acct:06}").into_bytes()
    }

    /// Encode a balance.
    pub fn encode(balance: i64) -> Vec<u8> {
        balance.to_le_bytes().to_vec()
    }

    /// Decode a balance (missing value = initial balance not yet
    /// materialized is *not* supported here; the cluster seeds all keys).
    pub fn decode(bytes: &[u8]) -> i64 {
        i64::from_le_bytes(bytes.try_into().expect("8-byte balance"))
    }

    /// Seed operations creating every account (one giant setup txn is
    /// split per site by the cluster).
    pub fn setup_ops(&self) -> Vec<Op> {
        (0..self.n_accounts)
            .map(|a| Op::Write {
                site: self.site_of(a),
                key: Self::key_of(a),
                value: Self::encode(self.initial_balance),
            })
            .collect()
    }

    /// Generate a random transfer: `(from, to, amount)` with distinct
    /// accounts on (usually) distinct sites.
    pub fn random_transfer(&mut self) -> (usize, usize, i64) {
        let from = self.rng.gen_range(0..self.n_accounts);
        let mut to = self.rng.gen_range(0..self.n_accounts);
        while to == from {
            to = self.rng.gen_range(0..self.n_accounts);
        }
        let amount = self.rng.gen_range(1i64..=100);
        (from, to, amount)
    }

    /// The expected total balance.
    pub fn expected_total(&self) -> i64 {
        self.initial_balance * self.n_accounts as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounts_are_sharded_round_robin() {
        let w = BankWorkload::new(3, 10, 100, 1);
        assert_eq!(w.site_of(0), 0);
        assert_eq!(w.site_of(4), 1);
        assert_eq!(w.site_of(8), 2);
    }

    #[test]
    fn balance_roundtrip() {
        assert_eq!(BankWorkload::decode(&BankWorkload::encode(-42)), -42);
        assert_eq!(BankWorkload::decode(&BankWorkload::encode(i64::MAX)), i64::MAX);
    }

    #[test]
    fn transfers_are_deterministic_per_seed() {
        let mut a = BankWorkload::new(3, 10, 100, 7);
        let mut b = BankWorkload::new(3, 10, 100, 7);
        for _ in 0..20 {
            assert_eq!(a.random_transfer(), b.random_transfer());
        }
    }

    #[test]
    fn transfer_endpoints_differ() {
        let mut w = BankWorkload::new(2, 5, 100, 3);
        for _ in 0..100 {
            let (f, t, amt) = w.random_transfer();
            assert_ne!(f, t);
            assert!(amt >= 1);
        }
    }

    #[test]
    fn setup_covers_every_account() {
        let w = BankWorkload::new(3, 7, 50, 0);
        let ops = w.setup_ops();
        assert_eq!(ops.len(), 7);
        assert_eq!(w.expected_total(), 350);
    }
}

/// An inventory sharded across sites: item stock lives at `site_of(item)`,
/// and a global order ledger lives at site 0. Each order atomically
/// decrements an item's stock and appends to the ledger total, so the
/// invariant `initial_stock = stock + sold` per item holds iff the commit
/// protocol preserves atomicity.
#[derive(Debug, Clone)]
pub struct InventoryWorkload {
    /// Number of sites.
    pub n_sites: usize,
    /// Number of items.
    pub n_items: usize,
    /// Initial stock per item.
    pub initial_stock: i64,
    rng: SimRng,
}

impl InventoryWorkload {
    /// Create an inventory with `n_items` items over `n_sites` sites.
    pub fn new(n_sites: usize, n_items: usize, initial_stock: i64, seed: u64) -> Self {
        assert!(n_sites >= 2 && n_items >= 1);
        Self { n_sites, n_items, initial_stock, rng: SimRng::seed_from_u64(seed) }
    }

    /// The site an item's stock lives at (sites 1.. hold stock; site 0
    /// holds the ledger).
    pub fn site_of(&self, item: usize) -> usize {
        1 + item % (self.n_sites - 1)
    }

    /// Stock key for an item.
    pub fn stock_key(item: usize) -> Vec<u8> {
        format!("stock{item:06}").into_bytes()
    }

    /// Ledger key for an item (how many were sold).
    pub fn sold_key(item: usize) -> Vec<u8> {
        format!("sold{item:06}").into_bytes()
    }

    /// Setup operations materializing stock and an empty ledger.
    pub fn setup_ops(&self) -> Vec<Op> {
        (0..self.n_items)
            .flat_map(|i| {
                [
                    Op::Write {
                        site: self.site_of(i),
                        key: Self::stock_key(i),
                        value: BankWorkload::encode(self.initial_stock),
                    },
                    Op::Write { site: 0, key: Self::sold_key(i), value: BankWorkload::encode(0) },
                ]
            })
            .collect()
    }

    /// A random order: `(item, quantity)`.
    pub fn random_order(&mut self) -> (usize, i64) {
        (self.rng.gen_range(0..self.n_items), self.rng.gen_range(1i64..=5))
    }
}
