//! The imperfect-detector equivalence contract: an *accurate* timeout
//! detector — one whose worst-case heartbeat latency fits inside the
//! timeout — is the paper's perfect detector, byte for byte. Reports,
//! traces, and post-run state digests must all be identical to a run with
//! no detector configured at all, across the whole catalog and Paxos
//! Commit, with and without crashes. Only an *inaccurate* spec (timeout
//! below the jitter ceiling) is allowed to change anything, and even then
//! every run must stay deterministic under its seed.

use nbc_core::protocols::catalog;
use nbc_core::{Analysis, Protocol};
use nbc_engine::{
    run_with, CrashPoint, CrashSpec, DetectorSpec, RunConfig, Runner, TerminationRule,
    TransitionProgress,
};
use nbc_paxos::paxos_commit;

/// Jitter bounds shared by every spec in these tests.
const JITTER: (u64, u64) = (1, 12);

fn accurate() -> DetectorSpec {
    let spec = DetectorSpec { timeout: JITTER.1, jitter: JITTER, seed: 7 };
    assert!(spec.is_accurate());
    spec
}

fn scenarios(n: usize) -> Vec<RunConfig> {
    let mut out = Vec::new();
    for base in [RunConfig::happy(n), RunConfig::one_no(n, 1)] {
        out.push(base.clone());
        let crash = base.with_crash(CrashSpec {
            site: 0,
            point: CrashPoint::OnTransition {
                ordinal: 2,
                progress: TransitionProgress::AfterMsgs(1),
            },
            recover_at: None,
        });
        out.push(crash.clone());
        out.push(crash.with_rule(TerminationRule::QuorumSkeen));
    }
    for cfg in &mut out {
        cfg.record_trace = true;
    }
    out
}

/// Run one config to quiescence, returning the report JSON, the full
/// human-readable trace, and the runner's post-run state digest.
fn outcome(
    protocol: &Protocol,
    analysis: &Analysis,
    cfg: RunConfig,
) -> (String, Vec<String>, u128) {
    let mut runner = Runner::new(protocol, analysis, cfg);
    while runner.step() {}
    let report = runner.report();
    (report.to_json(), report.trace.clone(), runner.digest())
}

#[test]
fn accurate_detector_is_the_perfect_detector_byte_for_byte() {
    let mut protocols: Vec<Protocol> = catalog(3);
    protocols.push(paxos_commit(2, 1));
    for protocol in &protocols {
        let analysis = Analysis::build(protocol).unwrap();
        for cfg in scenarios(protocol.n_sites()) {
            let mut with_detector = cfg.clone();
            with_detector.detector = Some(accurate());
            let legacy = outcome(protocol, &analysis, cfg);
            let timed = outcome(protocol, &analysis, with_detector);
            assert_eq!(legacy.0, timed.0, "{}: report JSON diverged", protocol.name);
            assert_eq!(legacy.1, timed.1, "{}: trace diverged", protocol.name);
            assert_eq!(legacy.2, timed.2, "{}: state digest diverged", protocol.name);
        }
    }
}

#[test]
fn accuracy_boundary_is_the_jitter_ceiling() {
    // timeout == worst-case heartbeat latency: accurate, so filtered to
    // the legacy path; one unit below: live, and allowed to diverge.
    let at = DetectorSpec { timeout: JITTER.1, jitter: JITTER, seed: 0 };
    let below = DetectorSpec { timeout: JITTER.1 - 1, jitter: JITTER, seed: 0 };
    assert!(at.is_accurate());
    assert!(!below.is_accurate());
}

#[test]
fn inaccurate_detector_runs_are_seed_deterministic() {
    let protocol = nbc_core::protocols::central_3pc(3);
    let analysis = Analysis::build(&protocol).unwrap();
    for seed in 0..8u64 {
        let mut cfg = RunConfig::happy(3);
        cfg.record_trace = true;
        cfg.detector = Some(DetectorSpec { timeout: 2, jitter: JITTER, seed });
        let a = outcome(&protocol, &analysis, cfg.clone());
        let b = outcome(&protocol, &analysis, cfg);
        assert_eq!(a, b, "seed {seed}: inaccurate-detector run must be deterministic");
    }
}

#[test]
fn aggressive_detector_still_decides_with_quorum_rule() {
    // The quorum termination rule's contract under false suspicion is
    // safety plus eventual progress on the majority side: every seed at
    // every timeout must end consistent, and a generous event budget
    // must suffice for all operational sites to decide.
    let protocol = nbc_core::protocols::central_3pc(3);
    let analysis = Analysis::build(&protocol).unwrap();
    for timeout in [1, 2, 4] {
        for seed in 0..8u64 {
            let mut cfg = RunConfig::happy(3);
            cfg.rule = TerminationRule::QuorumSkeen;
            cfg.detector = Some(DetectorSpec { timeout, jitter: JITTER, seed });
            let r = run_with(&protocol, &analysis, cfg);
            assert!(r.consistent, "timeout {timeout} seed {seed}: {r}");
            assert!(
                r.all_operational_decided,
                "timeout {timeout} seed {seed}: quorum rule must terminate: {r}"
            );
        }
    }
}
