//! The blocking story, told in three acts:
//!
//! 1. 2PC blocks when the coordinator dies in the decision window;
//! 2. blocked sites unblock when the coordinator recovers (the recovery
//!    protocol);
//! 3. trying to force a decision with the naive rule violates atomicity —
//!    the behavior the fundamental nonblocking theorem predicts for any
//!    blocking protocol.
//!
//! ```text
//! cargo run --example blocking_demo
//! ```

use nonblocking_commit::nbc_core::protocols::central_2pc;
use nonblocking_commit::nbc_core::Analysis;
use nonblocking_commit::nbc_engine::{
    run_with, CrashPoint, CrashSpec, RunConfig, TerminationRule, TransitionProgress,
};

fn main() {
    let protocol = central_2pc(3);
    let analysis = Analysis::build(&protocol).unwrap();

    // The window: the coordinator collects unanimous yes votes, durably
    // commits, and dies before telling anyone.
    let window = CrashSpec {
        site: 0,
        point: CrashPoint::OnTransition { ordinal: 2, progress: TransitionProgress::AfterMsgs(0) },
        recover_at: None,
    };

    // ----- Act 1: blocking ------------------------------------------------
    println!("== Act 1: the blocking window ==\n");
    let cfg = RunConfig::happy(3).with_rule(TerminationRule::Cooperative).with_crash(window);
    let r = run_with(&protocol, &analysis, cfg);
    println!("  {r}");
    assert!(r.any_blocked && r.consistent);
    println!(
        "\n  Both slaves sit in `w`. CS(w) contains both a commit and an abort \
         state, and w is\n  noncommittable — the theorem's two conditions, both \
         violated. Nobody can decide.\n"
    );

    // ----- Act 2: recovery ------------------------------------------------
    println!("== Act 2: recovery unblocks ==\n");
    let mut spec = window;
    spec.recover_at = Some(100);
    let cfg = RunConfig::happy(3).with_rule(TerminationRule::Cooperative).with_crash(spec);
    let r = run_with(&protocol, &analysis, cfg);
    println!("  {r}");
    assert!(r.consistent && !r.any_blocked);
    assert_eq!(r.decision(), Some(true));
    println!(
        "\n  The restarted coordinator finds the durable commit in its log and \
         answers the blocked\n  sites' queries. Blocking ends — but only because \
         the failed site came back.\n"
    );

    // ----- Act 3: the naive rule is unsafe ---------------------------------
    println!("== Act 3: forcing a decision violates atomicity ==\n");
    // For the violation the coordinator must durably *abort* while slaves
    // wait: it votes no and dies before broadcasting.
    let mut cfg = RunConfig::one_no(3, 0).with_rule(TerminationRule::NaiveCs);
    cfg.crashes = vec![window];
    let r = run_with(&protocol, &analysis, cfg);
    println!("  {r}");
    assert!(!r.consistent, "the naive rule must produce the inconsistency");
    println!(
        "\n  The backup slave applied the paper's rule verbatim to its own `w` \
         state: CS(w) contains\n  a commit state, so it committed — while the \
         dead coordinator's log says abort. A mixed\n  decision: the database is \
         inconsistent. This is WHY the rule demands a nonblocking\n  protocol, \
         and why 3PC exists."
    );
}
