//! The write-ahead log.
//!
//! ## Record framing
//!
//! ```text
//! +----------+----------+---------+-------------------+
//! | len: u32 | crc: u32 | tag: u8 | payload (len-1 B) |
//! +----------+----------+---------+-------------------+
//! ```
//!
//! `len` covers tag + payload; `crc` is CRC-32 over tag + payload. All
//! integers are little-endian. Recovery reads records until the first
//! frame that is truncated or fails its checksum — everything after a torn
//! write is discarded, which is exactly the local atomicity the paper
//! assumes of each site.
//!
//! ## Durability model
//!
//! The log buffer is in memory (the "disk" of the simulation), with an
//! explicit durable watermark: [`Wal::sync`] advances it to the current
//! end. A crash preserves only the synced prefix ([`Wal::crash_image`]).
//! Protocols call `sync` before acting on a state transition — writing the
//! record *ahead* of the action, hence the name.

use crate::codec::{BufExt, BufMutExt};

use crate::crc32::crc32;

/// Byte offset of a record in the log.
pub type Lsn = u64;

/// Errors from log operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// A record frame declared an impossible length.
    BadLength {
        /// Offset of the bad frame.
        at: Lsn,
    },
    /// A record failed its checksum.
    BadChecksum {
        /// Offset of the bad frame.
        at: Lsn,
    },
    /// Unknown record tag (log written by a newer version?).
    UnknownTag {
        /// Offset of the bad frame.
        at: Lsn,
        /// The unrecognized tag byte.
        tag: u8,
    },
    /// The payload of a known tag did not decode.
    Truncated {
        /// Offset of the bad frame.
        at: Lsn,
    },
    /// A record to be appended does not fit the frame format: some u32
    /// length prefix (key/value length, checkpoint pair count, or the
    /// frame's own tag+payload length) would be silently narrowed.
    RecordTooLarge {
        /// Encoded tag+payload size of the offending record.
        len: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadLength { at } => write!(f, "bad record length at lsn {at}"),
            Self::BadChecksum { at } => write!(f, "checksum mismatch at lsn {at}"),
            Self::UnknownTag { at, tag } => write!(f, "unknown record tag {tag} at lsn {at}"),
            Self::Truncated { at } => write!(f, "truncated record payload at lsn {at}"),
            Self::RecordTooLarge { len } => {
                write!(f, "record of {len} encoded bytes exceeds the u32 frame limit")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// A log record: the DT-log records of the commit protocol plus redo
/// images for data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A distributed transaction arrived at this site.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// The site's FSA moved to `state` (of `class`) for `txn`. Persisted
    /// *before* the transition's messages are sent, so a recovering site
    /// knows exactly how far it progressed.
    Progress {
        /// Transaction id.
        txn: u64,
        /// New local state id.
        state: u32,
        /// [`StateClass`](../../nbc_core/fsa/enum.StateClass.html) encoded
        /// via the engine's mapping (the storage layer is agnostic).
        class: u8,
    },
    /// Final decision for `txn`.
    Decision {
        /// Transaction id.
        txn: u64,
        /// `true` = commit, `false` = abort.
        commit: bool,
    },
    /// Termination protocol, phase 1: this site aligned to the backup
    /// coordinator's state class.
    AlignedTo {
        /// Transaction id.
        txn: u64,
        /// The class aligned to.
        class: u8,
    },
    /// A staged write (redo image) for `txn`.
    Put {
        /// Transaction id.
        txn: u64,
        /// Key bytes.
        key: Vec<u8>,
        /// New value bytes.
        value: Vec<u8>,
    },
    /// A staged deletion for `txn`.
    Delete {
        /// Transaction id.
        txn: u64,
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Transaction fully applied locally; earlier records for it may be
    /// garbage-collected.
    End {
        /// Transaction id.
        txn: u64,
    },
    /// A full snapshot of the committed key-value state. Taken at a
    /// quiescent point (no transactions in flight), it makes every earlier
    /// record redundant — the basis of log compaction.
    Checkpoint {
        /// The committed pairs, sorted by key.
        pairs: Vec<(Vec<u8>, Vec<u8>)>,
    },
}

impl LogRecord {
    fn tag(&self) -> u8 {
        match self {
            Self::Begin { .. } => 1,
            Self::Progress { .. } => 2,
            Self::Decision { .. } => 3,
            Self::AlignedTo { .. } => 4,
            Self::Put { .. } => 5,
            Self::Delete { .. } => 6,
            Self::End { .. } => 7,
            Self::Checkpoint { .. } => 8,
        }
    }

    /// Encoded size of tag + payload, computed without encoding — so a
    /// too-large record can be rejected before any bytes are copied.
    fn encoded_len(&self) -> u64 {
        1 + match self {
            Self::Begin { .. } | Self::End { .. } => 8,
            Self::Progress { .. } => 13,
            Self::Decision { .. } | Self::AlignedTo { .. } => 9,
            Self::Put { key, value, .. } => 16 + key.len() as u64 + value.len() as u64,
            Self::Delete { key, .. } => 12 + key.len() as u64,
            Self::Checkpoint { pairs } => {
                4 + pairs.iter().map(|(k, v)| 8 + k.len() as u64 + v.len() as u64).sum::<u64>()
            }
        }
    }

    /// Size in bytes of the full on-log frame for this record: the 4-byte
    /// length prefix, the 4-byte CRC, and the tag + payload. This is what
    /// an append grows the log by — exposed so callers can account for WAL
    /// traffic (e.g. bytes-per-transaction metrics) without re-deriving
    /// the frame layout.
    pub fn frame_len(&self) -> u64 {
        8 + self.encoded_len()
    }

    /// Check that every u32 length prefix in the frame actually fits:
    /// individual key/value lengths, the checkpoint pair count, and the
    /// frame header's tag+payload length. A bare `len as u32` would
    /// silently truncate and produce a frame that decodes garbage.
    fn check_fits(&self) -> Result<(), WalError> {
        const MAX: u64 = u32::MAX as u64;
        let fits = |n: usize| n as u64 <= MAX;
        let fields_ok = match self {
            Self::Put { key, value, .. } => fits(key.len()) && fits(value.len()),
            Self::Delete { key, .. } => fits(key.len()),
            Self::Checkpoint { pairs } => {
                fits(pairs.len()) && pairs.iter().all(|(k, v)| fits(k.len()) && fits(v.len()))
            }
            _ => true,
        };
        let len = self.encoded_len();
        if !fields_ok || len > MAX {
            return Err(WalError::RecordTooLarge { len });
        }
        Ok(())
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Self::Begin { txn } | Self::End { txn } => out.put_u64_le(*txn),
            Self::Progress { txn, state, class } => {
                out.put_u64_le(*txn);
                out.put_u32_le(*state);
                out.put_u8(*class);
            }
            Self::Decision { txn, commit } => {
                out.put_u64_le(*txn);
                out.put_u8(u8::from(*commit));
            }
            Self::AlignedTo { txn, class } => {
                out.put_u64_le(*txn);
                out.put_u8(*class);
            }
            Self::Put { txn, key, value } => {
                out.put_u64_le(*txn);
                out.put_u32_le(key.len() as u32);
                out.put_slice(key);
                out.put_u32_le(value.len() as u32);
                out.put_slice(value);
            }
            Self::Delete { txn, key } => {
                out.put_u64_le(*txn);
                out.put_u32_le(key.len() as u32);
                out.put_slice(key);
            }
            Self::Checkpoint { pairs } => {
                out.put_u32_le(pairs.len() as u32);
                for (k, v) in pairs {
                    out.put_u32_le(k.len() as u32);
                    out.put_slice(k);
                    out.put_u32_le(v.len() as u32);
                    out.put_slice(v);
                }
            }
        }
    }

    fn decode(tag: u8, mut buf: &[u8], at: Lsn) -> Result<Self, WalError> {
        fn need(buf: &[u8], n: usize, at: Lsn) -> Result<(), WalError> {
            if buf.remaining() < n {
                Err(WalError::Truncated { at })
            } else {
                Ok(())
            }
        }
        match tag {
            1 | 7 => {
                need(buf, 8, at)?;
                let txn = buf.get_u64_le();
                Ok(if tag == 1 { Self::Begin { txn } } else { Self::End { txn } })
            }
            2 => {
                need(buf, 13, at)?;
                let txn = buf.get_u64_le();
                let state = buf.get_u32_le();
                let class = buf.get_u8();
                Ok(Self::Progress { txn, state, class })
            }
            3 => {
                need(buf, 9, at)?;
                let txn = buf.get_u64_le();
                let commit = buf.get_u8() != 0;
                Ok(Self::Decision { txn, commit })
            }
            4 => {
                need(buf, 9, at)?;
                let txn = buf.get_u64_le();
                let class = buf.get_u8();
                Ok(Self::AlignedTo { txn, class })
            }
            5 => {
                need(buf, 12, at)?;
                let txn = buf.get_u64_le();
                let klen = buf.get_u32_le() as usize;
                need(buf, klen + 4, at)?;
                let key = buf[..klen].to_vec();
                buf.advance(klen);
                let vlen = buf.get_u32_le() as usize;
                need(buf, vlen, at)?;
                let value = buf[..vlen].to_vec();
                Ok(Self::Put { txn, key, value })
            }
            6 => {
                need(buf, 12, at)?;
                let txn = buf.get_u64_le();
                let klen = buf.get_u32_le() as usize;
                need(buf, klen, at)?;
                let key = buf[..klen].to_vec();
                Ok(Self::Delete { txn, key })
            }
            8 => {
                need(buf, 4, at)?;
                let count = buf.get_u32_le() as usize;
                let mut pairs = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    need(buf, 4, at)?;
                    let klen = buf.get_u32_le() as usize;
                    need(buf, klen + 4, at)?;
                    let k = buf[..klen].to_vec();
                    buf.advance(klen);
                    let vlen = buf.get_u32_le() as usize;
                    need(buf, vlen, at)?;
                    let v = buf[..vlen].to_vec();
                    buf.advance(vlen);
                    pairs.push((k, v));
                }
                Ok(Self::Checkpoint { pairs })
            }
            other => Err(WalError::UnknownTag { at, tag: other }),
        }
    }
}

/// Counters for the sync path: how many durability requests the log saw
/// and how many turned into physical forces. The gap is the group-commit
/// win ([`SyncStats::saved`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Durability requests ([`Wal::sync`] / [`Wal::sync_batched`] calls).
    pub requested: u64,
    /// Requests that actually forced bytes to stable storage.
    pub physical: u64,
}

impl SyncStats {
    /// Requests absorbed without a physical force (batched into an open
    /// group-commit window, or no-ops with nothing new to force).
    pub fn saved(&self) -> u64 {
        self.requested - self.physical
    }

    /// Accumulate another log's counters (for cluster-wide totals).
    pub fn absorb(&mut self, other: &SyncStats) {
        self.requested += other.requested;
        self.physical += other.physical;
    }
}

/// An in-memory write-ahead log with explicit durability.
#[derive(Debug, Clone, Default)]
pub struct Wal {
    buf: Vec<u8>,
    durable: usize,
    sync_stats: SyncStats,
    group_window: u64,
    last_force_at: Option<u64>,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record; returns its LSN. The record is *not* durable until
    /// [`Wal::sync`].
    ///
    /// Fails with [`WalError::RecordTooLarge`] — leaving the log untouched —
    /// if any u32 length prefix of the frame would be narrowed.
    pub fn append(&mut self, rec: &LogRecord) -> Result<Lsn, WalError> {
        rec.check_fits()?;
        let at = self.buf.len() as Lsn;
        let mut payload = Vec::with_capacity(32);
        payload.push(rec.tag());
        rec.encode_payload(&mut payload);
        self.buf.put_u32_le(payload.len() as u32);
        self.buf.put_u32_le(crc32(&payload));
        self.buf.extend_from_slice(&payload);
        Ok(at)
    }

    /// Append and immediately sync (the common protocol-record path —
    /// write-ahead means the record must be durable before the transition's
    /// messages go out).
    pub fn append_sync(&mut self, rec: &LogRecord) -> Result<Lsn, WalError> {
        let lsn = self.append(rec)?;
        self.sync();
        Ok(lsn)
    }

    /// Make everything appended so far durable.
    pub fn sync(&mut self) {
        self.sync_stats.requested += 1;
        if self.durable < self.buf.len() {
            self.sync_stats.physical += 1;
        }
        self.durable = self.buf.len();
    }

    /// Set the group-commit batch window, in simulation ticks. `0`
    /// (the default) disables batching: every [`Wal::sync_batched`] call
    /// with undurable bytes pays a physical force.
    pub fn set_group_window(&mut self, window: u64) {
        self.group_window = window;
    }

    /// Group-commit durability: request a force at simulation time `now`,
    /// coalescing with other requests in the same batch window. Returns
    /// `true` if this call paid a physical force.
    ///
    /// Model: a physical force at time `t` opens a batch window of
    /// `group_window` ticks. A request arriving at `now < t + window` joins
    /// that batch — its bytes ride the batch's single force (which the
    /// batcher completes at window close) and no new physical force is
    /// counted. The watermark still advances immediately: within the
    /// window the simulator injects no crash that could observe the gap
    /// between "joined the batch" and "batch forced", so the accounting is
    /// observationally equivalent to a real delayed group force.
    pub fn sync_batched(&mut self, now: u64) -> bool {
        self.sync_stats.requested += 1;
        if self.durable == self.buf.len() {
            return false; // nothing new to force
        }
        self.durable = self.buf.len();
        if let Some(t) = self.last_force_at {
            if now >= t && now - t < self.group_window {
                return false; // joined the open batch
            }
        }
        self.last_force_at = Some(now);
        self.sync_stats.physical += 1;
        true
    }

    /// Sync-path counters (requests vs. physical forces).
    pub fn sync_stats(&self) -> SyncStats {
        self.sync_stats
    }

    /// Total bytes appended.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Bytes guaranteed to survive a crash.
    pub fn durable_len(&self) -> usize {
        self.durable
    }

    /// The byte image a crash would leave behind: the synced prefix.
    pub fn crash_image(&self) -> Vec<u8> {
        self.buf[..self.durable].to_vec()
    }

    /// The full byte image (as if shut down cleanly).
    pub fn full_image(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Decode a byte image back into records.
    ///
    /// Stops at the first truncated frame (normal after a crash — the tail
    /// was torn) and returns the records before it. A checksum or tag
    /// failure in the *interior* is still reported as that error on the
    /// offending frame; callers distinguish "clean tail truncation" (an
    /// incomplete final frame, `Ok`) from corruption (`Err`).
    pub fn recover(image: &[u8]) -> Result<Vec<LogRecord>, WalError> {
        let mut recs = Vec::new();
        let mut off = 0usize;
        while off < image.len() {
            let at = off as Lsn;
            if image.len() - off < 8 {
                break; // torn frame header
            }
            let len = u32::from_le_bytes(image[off..off + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(image[off + 4..off + 8].try_into().unwrap());
            if len == 0 {
                return Err(WalError::BadLength { at });
            }
            if image.len() - off - 8 < len {
                break; // torn payload
            }
            let payload = &image[off + 8..off + 8 + len];
            if crc32(payload) != crc {
                return Err(WalError::BadChecksum { at });
            }
            let rec = LogRecord::decode(payload[0], &payload[1..], at)?;
            recs.push(rec);
            off += 8 + len;
        }
        Ok(recs)
    }

    /// Compact the log: replace its entire contents with one durable
    /// checkpoint of the given committed pairs. Callers must be quiescent —
    /// any in-flight transaction's redo images are discarded with the old
    /// log, so its decision could no longer be replayed.
    pub fn checkpoint_compact(&mut self, pairs: Vec<(Vec<u8>, Vec<u8>)>) -> Result<Lsn, WalError> {
        let rec = LogRecord::Checkpoint { pairs };
        // Validate before clearing — a failed compaction must not lose the
        // existing log.
        rec.check_fits()?;
        self.buf.clear();
        self.durable = 0;
        let lsn = self.append(&rec).expect("checked above");
        self.sync();
        Ok(lsn)
    }

    /// Restore a `Wal` from a crash image: the image becomes the durable
    /// prefix, with any torn tail discarded.
    pub fn from_image(image: &[u8]) -> Result<(Self, Vec<LogRecord>), WalError> {
        let recs = Self::recover(image)?;
        // Re-encode nothing: keep only the well-formed prefix length.
        let mut well_formed = 0usize;
        let mut off = 0usize;
        for _ in &recs {
            let len = u32::from_le_bytes(image[off..off + 4].try_into().unwrap()) as usize;
            off += 8 + len;
            well_formed = off;
        }
        let buf = image[..well_formed].to_vec();
        let durable = buf.len();
        Ok((Self { buf, durable, ..Self::default() }, recs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn: 7 },
            LogRecord::Progress { txn: 7, state: 1, class: 1 },
            LogRecord::Put { txn: 7, key: b"alice".to_vec(), value: b"100".to_vec() },
            LogRecord::Delete { txn: 7, key: b"bob".to_vec() },
            LogRecord::AlignedTo { txn: 7, class: 2 },
            LogRecord::Decision { txn: 7, commit: true },
            LogRecord::End { txn: 7 },
        ]
    }

    #[test]
    fn roundtrip_all_record_types() {
        let mut wal = Wal::new();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        wal.sync();
        let recovered = Wal::recover(&wal.crash_image()).unwrap();
        assert_eq!(recovered, sample_records());
    }

    #[test]
    fn frame_len_matches_actual_log_growth() {
        let mut wal = Wal::new();
        for r in sample_records() {
            let before = wal.len() as u64;
            wal.append(&r).unwrap();
            assert_eq!(wal.len() as u64 - before, r.frame_len(), "{r:?}");
        }
    }

    #[test]
    fn unsynced_tail_is_lost_on_crash() {
        let mut wal = Wal::new();
        wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
        wal.sync();
        wal.append(&LogRecord::Decision { txn: 1, commit: true }).unwrap();
        // No sync: the decision is not durable.
        let recovered = Wal::recover(&wal.crash_image()).unwrap();
        assert_eq!(recovered, vec![LogRecord::Begin { txn: 1 }]);
    }

    #[test]
    fn append_sync_is_durable() {
        let mut wal = Wal::new();
        wal.append_sync(&LogRecord::Decision { txn: 3, commit: false }).unwrap();
        let recovered = Wal::recover(&wal.crash_image()).unwrap();
        assert_eq!(recovered.len(), 1);
    }

    #[test]
    fn sync_batched_coalesces_within_window() {
        let mut wal = Wal::new();
        wal.set_group_window(3);
        // Three rounds force at t=0..2: one physical force, two batched.
        for t in 0..3u64 {
            wal.append(&LogRecord::Begin { txn: t }).unwrap();
            let physical = wal.sync_batched(t);
            assert_eq!(physical, t == 0);
        }
        // All three records are durable regardless.
        assert_eq!(wal.durable_len(), wal.len());
        assert_eq!(Wal::recover(&wal.crash_image()).unwrap().len(), 3);
        // Past the window, the next request pays a force again.
        wal.append(&LogRecord::Begin { txn: 9 }).unwrap();
        assert!(wal.sync_batched(3));
        let s = wal.sync_stats();
        assert_eq!(s.requested, 4);
        assert_eq!(s.physical, 2);
        assert_eq!(s.saved(), 2);
    }

    #[test]
    fn sync_batched_without_window_forces_every_time() {
        let mut wal = Wal::new();
        for t in 0..3u64 {
            wal.append(&LogRecord::Begin { txn: t }).unwrap();
            assert!(wal.sync_batched(t), "window 0 must always force");
        }
        // A request with nothing new to force is saved, not physical.
        assert!(!wal.sync_batched(3));
        let s = wal.sync_stats();
        assert_eq!((s.requested, s.physical, s.saved()), (4, 3, 1));
    }

    #[test]
    fn torn_tail_is_dropped_cleanly() {
        let mut wal = Wal::new();
        wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
        wal.append(&LogRecord::Decision { txn: 1, commit: true }).unwrap();
        wal.sync();
        let mut image = wal.crash_image();
        // Tear the last record: drop 3 bytes.
        image.truncate(image.len() - 3);
        let recovered = Wal::recover(&image).unwrap();
        assert_eq!(recovered, vec![LogRecord::Begin { txn: 1 }]);
    }

    #[test]
    fn corrupt_interior_detected() {
        let mut wal = Wal::new();
        wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
        wal.append(&LogRecord::End { txn: 1 }).unwrap();
        wal.sync();
        let mut image = wal.crash_image();
        image[10] ^= 0xFF; // flip a bit inside the first payload
        assert!(matches!(Wal::recover(&image), Err(WalError::BadChecksum { at: 0 })));
    }

    #[test]
    fn unknown_tag_detected() {
        // Hand-craft a frame with tag 99.
        let payload = vec![99u8, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut image = Vec::new();
        image.put_u32_le(payload.len() as u32);
        image.put_u32_le(crc32(&payload));
        image.extend_from_slice(&payload);
        assert!(matches!(Wal::recover(&image), Err(WalError::UnknownTag { tag: 99, .. })));
    }

    #[test]
    fn zero_length_frame_rejected() {
        let mut image = Vec::new();
        image.put_u32_le(0);
        image.put_u32_le(0);
        assert!(matches!(Wal::recover(&image), Err(WalError::BadLength { at: 0 })));
    }

    #[test]
    fn from_image_restores_durable_log() {
        let mut wal = Wal::new();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        wal.sync();
        let image = wal.crash_image();
        let (restored, recs) = Wal::from_image(&image).unwrap();
        assert_eq!(recs, sample_records());
        assert_eq!(restored.durable_len(), image.len());
        // And the restored log keeps working.
        let mut restored = restored;
        restored.append_sync(&LogRecord::End { txn: 99 }).unwrap();
        let again = Wal::recover(&restored.crash_image()).unwrap();
        assert_eq!(again.len(), sample_records().len() + 1);
    }

    #[test]
    fn lsn_is_byte_offset() {
        let mut wal = Wal::new();
        let l0 = wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
        let l1 = wal.append(&LogRecord::Begin { txn: 2 }).unwrap();
        assert_eq!(l0, 0);
        assert!(l1 > l0);
    }

    #[test]
    fn oversized_record_rejected_before_encoding() {
        // Regression: `key.len() as u32` used to narrow silently, writing a
        // frame whose length prefix disagrees with its bytes. The length
        // check fires before any encoding, so this 4 GiB key is never
        // copied (and, being lazily zeroed, never faulted in).
        let key = vec![0u8; u32::MAX as usize + 1];
        let mut wal = Wal::new();
        let err = wal.append(&LogRecord::Delete { txn: 1, key }).unwrap_err();
        assert!(matches!(err, WalError::RecordTooLarge { .. }));
        assert!(wal.is_empty(), "failed append must leave the log untouched");
        // A failed compaction must not lose the existing log either.
        wal.append_sync(&LogRecord::Begin { txn: 1 }).unwrap();
        let huge = vec![(vec![0u8; u32::MAX as usize + 1], Vec::new())];
        assert!(matches!(wal.checkpoint_compact(huge), Err(WalError::RecordTooLarge { .. })));
        assert_eq!(Wal::recover(&wal.crash_image()).unwrap(), vec![LogRecord::Begin { txn: 1 }]);
    }

    #[test]
    fn empty_image_recovers_empty() {
        assert_eq!(Wal::recover(&[]).unwrap(), vec![]);
        assert!(Wal::new().is_empty());
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use crate::kv::KvStore;

    fn populated() -> (Wal, KvStore) {
        let mut wal = Wal::new();
        let mut kv = KvStore::new();
        for i in 0..5u64 {
            kv.stage_put(i, format!("k{i}").into_bytes(), format!("v{i}").into_bytes());
            kv.log_stage(i, &mut wal);
            wal.append(&LogRecord::Decision { txn: i, commit: i != 2 }).unwrap();
            if i != 2 {
                kv.commit(i);
            } else {
                kv.abort(i);
            }
        }
        wal.sync();
        (wal, kv)
    }

    #[test]
    fn checkpoint_roundtrips() {
        let rec = LogRecord::Checkpoint {
            pairs: vec![(b"a".to_vec(), b"1".to_vec()), (b"b".to_vec(), vec![])],
        };
        let mut wal = Wal::new();
        wal.append_sync(&rec).unwrap();
        assert_eq!(Wal::recover(&wal.crash_image()).unwrap(), vec![rec]);
    }

    #[test]
    fn compaction_preserves_committed_state() {
        let (mut wal, kv) = populated();
        let before = KvStore::redo_from_log(&Wal::recover(&wal.crash_image()).unwrap());
        let old_len = wal.len();
        wal.checkpoint_compact(kv.snapshot()).unwrap();
        assert!(wal.len() < old_len, "compaction must shrink this log");
        let after = KvStore::redo_from_log(&Wal::recover(&wal.crash_image()).unwrap());
        let b: Vec<_> = before.iter().collect();
        let a: Vec<_> = after.iter().collect();
        assert_eq!(a, b);
        // The aborted txn's key is absent in both.
        assert_eq!(after.get(b"k2"), None);
        assert_eq!(after.get(b"k3"), Some(b"v3".as_slice()));
    }

    #[test]
    fn post_checkpoint_records_replay_on_top() {
        let (mut wal, kv) = populated();
        wal.checkpoint_compact(kv.snapshot()).unwrap();
        wal.append(&LogRecord::Put { txn: 9, key: b"k0".to_vec(), value: b"new".to_vec() })
            .unwrap();
        wal.append(&LogRecord::Decision { txn: 9, commit: true }).unwrap();
        wal.append(&LogRecord::Put { txn: 10, key: b"k1".to_vec(), value: b"no".to_vec() })
            .unwrap();
        wal.append(&LogRecord::Decision { txn: 10, commit: false }).unwrap();
        wal.sync();
        let rebuilt = KvStore::redo_from_log(&Wal::recover(&wal.crash_image()).unwrap());
        assert_eq!(rebuilt.get(b"k0"), Some(b"new".as_slice()));
        assert_eq!(rebuilt.get(b"k1"), Some(b"v1".as_slice()), "aborted overwrite ignored");
    }

    #[test]
    fn empty_checkpoint_clears_state() {
        let (mut wal, _) = populated();
        wal.checkpoint_compact(Vec::new()).unwrap();
        let rebuilt = KvStore::redo_from_log(&Wal::recover(&wal.crash_image()).unwrap());
        assert!(rebuilt.is_empty());
    }

    #[test]
    fn torn_checkpoint_is_detected_as_truncation() {
        let mut wal = Wal::new();
        wal.checkpoint_compact(vec![(vec![b'x'; 100], vec![b'y'; 100])]).unwrap();
        let mut image = wal.crash_image();
        image.truncate(image.len() - 10);
        // The frame is torn, so recovery sees an empty clean prefix.
        assert_eq!(Wal::recover(&image).unwrap(), vec![]);
    }
}
