//! Minimal byte-cursor traits for the WAL's binary record format.
//!
//! These mirror the tiny slice of the `bytes` crate's `Buf`/`BufMut` API
//! the log codec actually uses, so the workspace stays free of external
//! dependencies. [`BufExt`] is a consuming read cursor over `&[u8]`
//! (each getter advances the slice); [`BufMutExt`] appends little-endian
//! primitives to a `Vec<u8>`.

/// A consuming little-endian read cursor over a byte slice.
pub trait BufExt {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl BufExt for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

/// Little-endian append helpers for a growable byte buffer.
pub trait BufMutExt {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append raw bytes.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMutExt for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_slice(b"xyz");

        let mut cur: &[u8] = &out;
        assert_eq!(cur.remaining(), 1 + 4 + 8 + 3);
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur, b"xyz");
        cur.advance(3);
        assert_eq!(cur.remaining(), 0);
    }
}
