//! Packed bitset representation of the per-state analysis facts, and the
//! accumulator that folds them up *during* reachable-graph construction.
//!
//! The concurrency set C(s) is the load-bearing object of the paper — both
//! conditions of the Fundamental Nonblocking Theorem and the
//! termination-protocol decision rule are queries over it. Representing it
//! as a `BTreeSet<(SiteId, StateId)>` per local state (the pre-fusion
//! implementation) costs an allocation-heavy `O(nodes · n²)` re-traversal
//! of the finished graph. This module instead packs every fact into
//! fixed-width bitsets over *(site, state) slots*:
//!
//! * slots are numbered site-major (`slot(i, s) = offsets[i] + s`), so
//!   ascending bit order is exactly ascending `(SiteId, StateId)` order —
//!   the iteration order of the old `BTreeSet`s, which keeps theorem
//!   witnesses bit-for-bit identical;
//! * the concurrency set of a slot is one row of `words` 64-bit words;
//! * occupancy, noncommittability, and yes-votedness are one row each.
//!
//! Folding one global state is `O(n + n·words)` word operations with zero
//! allocations, and because every fact is a monotone bit (set-once), the
//! accumulator can be **split per worker and OR-merged at every BFS level
//! barrier**: OR is commutative, associative, and idempotent, so the merged
//! bits are identical for any thread count, any chunking, and any merge
//! order — the same determinism argument as the interned graph itself.

use crate::fsa::{Fsa, Vote};
use crate::ids::{SiteId, StateId};
use crate::protocol::Protocol;
use crate::reach::{GlobalState, StateFolder};

/// Maps `(site, state)` pairs to a dense site-major slot numbering.
#[derive(Clone, Debug)]
pub(crate) struct SlotMap {
    /// `offsets[i]` = first slot of site `i`'s states.
    offsets: Vec<u32>,
    /// Total number of slots.
    total: u32,
}

impl SlotMap {
    /// Build the slot numbering for a protocol.
    pub(crate) fn new(protocol: &Protocol) -> Self {
        let mut offsets = Vec::with_capacity(protocol.n_sites());
        let mut total = 0u32;
        for f in protocol.fsas() {
            offsets.push(total);
            total += f.state_count() as u32;
        }
        Self { offsets, total }
    }

    /// The slot of local state `s` of site `site`.
    #[inline]
    pub(crate) fn slot(&self, site: SiteId, s: StateId) -> u32 {
        self.offsets[site.index()] + s.0
    }

    /// Invert a slot back to its `(site, state)` pair.
    #[inline]
    pub(crate) fn unslot(&self, slot: u32) -> (SiteId, StateId) {
        let i = self.offsets.partition_point(|&o| o <= slot) - 1;
        (SiteId(i as u32), StateId(slot - self.offsets[i]))
    }

    /// Total number of slots.
    pub(crate) fn total(&self) -> usize {
        self.total as usize
    }

    /// Bitset row width, in 64-bit words.
    pub(crate) fn words(&self) -> usize {
        (self.total as usize).div_ceil(64).max(1)
    }

    /// The slot range `[start, end)` owned by `site`.
    pub(crate) fn site_range(&self, site: SiteId) -> std::ops::Range<u32> {
        let i = site.index();
        let end = self.offsets.get(i + 1).copied().unwrap_or(self.total);
        self.offsets[i]..end
    }
}

/// Set bit `i` of a packed row.
#[inline]
pub(crate) fn bit_set(bits: &mut [u64], i: u32) {
    bits[(i / 64) as usize] |= 1u64 << (i % 64);
}

/// Test bit `i` of a packed row.
#[inline]
pub(crate) fn bit_get(bits: &[u64], i: u32) -> bool {
    bits[(i / 64) as usize] & (1u64 << (i % 64)) != 0
}

/// Clear bit `i` of a packed row.
#[inline]
pub(crate) fn bit_clear(bits: &mut [u64], i: u32) {
    bits[(i / 64) as usize] &= !(1u64 << (i % 64));
}

/// `dst |= src`, word by word.
#[inline]
pub(crate) fn or_into(dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// Do two rows share a set bit?
#[inline]
pub(crate) fn intersects(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(&x, &y)| x & y != 0)
}

/// Index of the first bit set in both rows (the minimum common element).
#[inline]
pub(crate) fn first_common(a: &[u64], b: &[u64]) -> Option<u32> {
    for (w, (&x, &y)) in a.iter().zip(b).enumerate() {
        let both = x & y;
        if both != 0 {
            return Some(w as u32 * 64 + both.trailing_zeros());
        }
    }
    None
}

/// Iterate the indices of all set bits in ascending order.
pub(crate) fn iter_ones(bits: &[u64]) -> impl Iterator<Item = u32> + '_ {
    bits.iter().enumerate().flat_map(|(w, &word)| {
        let mut rest = word;
        std::iter::from_fn(move || {
            if rest == 0 {
                return None;
            }
            let b = rest.trailing_zeros();
            rest &= rest - 1;
            Some(w as u32 * 64 + b)
        })
    })
}

/// The fused analysis accumulator: everything [`crate::Analysis`] needs,
/// folded one global state at a time as the BFS discovers it.
///
/// Implements [`StateFolder`], so `core::reach` can fold states inside the
/// frontier-parallel construction: each worker gets a [`split`] of the main
/// accumulator, folds the frontier chunk it expands, and the main thread
/// [`absorb`]s the workers back at the level barrier.
///
/// [`split`]: StateFolder::split
/// [`absorb`]: StateFolder::absorb
#[derive(Clone, Debug)]
pub(crate) struct ConcurrencyFacts {
    slots: SlotMap,
    words: usize,
    /// `yes_voted` bit per slot: every FSA path to the state casts a yes
    /// vote. Input to the fold (per-protocol, precomputed), not an
    /// accumulated fact.
    yes_voted: Vec<u64>,
    /// Row-major concurrency bits: `cs[slot * words ..][..words]` holds the
    /// slots co-occupied with `slot` in some folded global state. Includes
    /// the state's *own* site until [`crate::Analysis`] masks own-site
    /// ranges out at finish time.
    cs: Vec<u64>,
    /// Slot appears in some folded global state.
    occupied: Vec<u64>,
    /// Slot appears in a global state where not every site is yes-voted
    /// (the complement of the paper's committability).
    noncommittable: Vec<u64>,
    /// Scratch: the slot mask of the global state being folded.
    state_mask: Vec<u64>,
    /// Number of states folded (for throughput accounting).
    folded: u64,
}

impl ConcurrencyFacts {
    /// Fresh, empty accumulator for a protocol.
    pub(crate) fn new(protocol: &Protocol) -> Self {
        let slots = SlotMap::new(protocol);
        let words = slots.words();
        let mut yes_voted = vec![0u64; words];
        for (i, fsa) in protocol.fsas().iter().enumerate() {
            for (s, yes) in yes_voted_states(fsa).into_iter().enumerate() {
                if yes {
                    bit_set(&mut yes_voted, slots.slot(SiteId(i as u32), StateId(s as u32)));
                }
            }
        }
        let total = slots.total();
        Self {
            words,
            yes_voted,
            cs: vec![0; total * words],
            occupied: vec![0; words],
            noncommittable: vec![0; words],
            state_mask: vec![0; words],
            folded: 0,
            slots,
        }
    }

    /// Consume the accumulator, returning its parts for
    /// [`crate::Analysis`]: `(slots, yes_voted, cs, occupied,
    /// noncommittable, folded)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(self) -> (SlotMap, Vec<u64>, Vec<u64>, Vec<u64>, Vec<u64>, u64) {
        (self.slots, self.yes_voted, self.cs, self.occupied, self.noncommittable, self.folded)
    }
}

impl StateFolder for ConcurrencyFacts {
    fn fold(&mut self, state: &GlobalState) {
        self.folded += 1;
        self.state_mask.fill(0);
        let mut all_yes = true;
        for (i, &s) in state.locals.iter().enumerate() {
            let slot = self.slots.offsets[i] + s.0;
            bit_set(&mut self.state_mask, slot);
            all_yes &= bit_get(&self.yes_voted, slot);
        }
        let words = self.words;
        for (i, &s) in state.locals.iter().enumerate() {
            let slot = self.slots.offsets[i] + s.0;
            bit_set(&mut self.occupied, slot);
            if !all_yes {
                bit_set(&mut self.noncommittable, slot);
            }
            let row = &mut self.cs[slot as usize * words..(slot as usize + 1) * words];
            or_into(row, &self.state_mask);
        }
    }

    fn split(&self) -> Self {
        Self {
            slots: self.slots.clone(),
            words: self.words,
            yes_voted: self.yes_voted.clone(),
            cs: vec![0; self.cs.len()],
            occupied: vec![0; self.words],
            noncommittable: vec![0; self.words],
            state_mask: vec![0; self.words],
            folded: 0,
        }
    }

    fn absorb(&mut self, other: Self) {
        or_into(&mut self.cs, &other.cs);
        or_into(&mut self.occupied, &other.occupied);
        or_into(&mut self.noncommittable, &other.noncommittable);
        self.folded += other.folded;
    }
}

/// Compute, for one FSA, which states are yes-voted: state `t` is yes-voted
/// iff `t` is unreachable from the initial state using only transitions
/// that do not cast a yes vote.
pub(crate) fn yes_voted_states(fsa: &Fsa) -> Vec<bool> {
    let mut yes_free_reachable = vec![false; fsa.state_count()];
    let mut stack = vec![fsa.initial()];
    yes_free_reachable[fsa.initial().index()] = true;
    while let Some(s) = stack.pop() {
        for (_, t) in fsa.outgoing(s) {
            if t.vote != Some(Vote::Yes) && !yes_free_reachable[t.to.index()] {
                yes_free_reachable[t.to.index()] = true;
                stack.push(t.to);
            }
        }
    }
    yes_free_reachable.iter().map(|&r| !r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::central_2pc;

    #[test]
    fn slot_map_roundtrips() {
        let p = central_2pc(3);
        let m = SlotMap::new(&p);
        for site in p.sites() {
            for s in 0..p.fsa(site).state_count() {
                let id = StateId(s as u32);
                let slot = m.slot(site, id);
                assert_eq!(m.unslot(slot), (site, id));
                assert!(m.site_range(site).contains(&slot));
            }
        }
        assert_eq!(m.total(), p.fsas().iter().map(Fsa::state_count).sum::<usize>());
    }

    #[test]
    fn slot_order_is_site_state_order() {
        // Ascending slots must be ascending (SiteId, StateId) pairs — the
        // old BTreeSet iteration order the theorem witnesses rely on.
        let p = central_2pc(3);
        let m = SlotMap::new(&p);
        let pairs: Vec<_> = (0..m.total() as u32).map(|b| m.unslot(b)).collect();
        let mut sorted = pairs.clone();
        sorted.sort();
        assert_eq!(pairs, sorted);
    }

    #[test]
    fn bit_helpers() {
        let mut row = vec![0u64; 2];
        bit_set(&mut row, 3);
        bit_set(&mut row, 64);
        bit_set(&mut row, 127);
        assert!(bit_get(&row, 3) && bit_get(&row, 64) && bit_get(&row, 127));
        assert!(!bit_get(&row, 4));
        assert_eq!(iter_ones(&row).collect::<Vec<_>>(), vec![3, 64, 127]);
        let mut mask = vec![0u64; 2];
        bit_set(&mut mask, 64);
        assert!(intersects(&row, &mask));
        assert_eq!(first_common(&row, &mask), Some(64));
        bit_clear(&mut row, 64);
        assert!(!intersects(&row, &mask));
        assert_eq!(first_common(&row, &mask), None);
    }

    #[test]
    fn split_absorb_matches_straight_fold() {
        // OR-merge determinism in miniature: folding states through two
        // split accumulators and absorbing must equal one straight fold.
        let p = central_2pc(2);
        let g = crate::reach::ReachGraph::build(&p).unwrap();
        let mut straight = ConcurrencyFacts::new(&p);
        for id in 0..g.node_count() as crate::reach::NodeId {
            straight.fold(g.node(id));
        }
        let mut merged = ConcurrencyFacts::new(&p);
        let (mut a, mut b) = (merged.split(), merged.split());
        for id in 0..g.node_count() as crate::reach::NodeId {
            if id % 2 == 0 {
                a.fold(g.node(id))
            } else {
                b.fold(g.node(id))
            }
        }
        merged.absorb(b);
        merged.absorb(a);
        assert_eq!(straight.cs, merged.cs);
        assert_eq!(straight.occupied, merged.occupied);
        assert_eq!(straight.noncommittable, merged.noncommittable);
        assert_eq!(straight.folded, merged.folded);
    }
}
