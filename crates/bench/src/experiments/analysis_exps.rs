//! Concurrency-set, theorem, and synchronicity experiments.

use nbc_core::canonical::canonical_2pc;
use nbc_core::protocols::{catalog, decentralized_2pc};
use nbc_core::{sync_check, theorem, Analysis, SiteId, StateId};

use crate::table::Table;

/// E4 — "Concurrency sets in the canonical 2PC protocol": the paper's
/// table, computed two ways — by adjacency on the canonical automaton
/// (the Lemma's shortcut) and exactly from the reachable state graph of
/// the instantiated decentralized 2PC. Both must agree with the paper.
pub fn e4_concurrency_sets() -> String {
    let mut out = String::new();

    let can = canonical_2pc();
    let mut t = Table::new(["state", "CS via adjacency (Lemma)", "CS exact (reach graph)"]);
    let p = decentralized_2pc(2);
    let a = Analysis::build(&p).expect("tiny");
    let fsa = p.fsa(SiteId(0));
    for name in ["q", "w", "a", "c"] {
        let adj = can.adjacency_names(can.state_by_name(name).expect("canonical state")).join(", ");
        let s = fsa.state_by_name(name).expect("state");
        let mut ids: Vec<StateId> = a
            .concurrency_set(SiteId(0), s)
            .iter()
            .map(|&(_, t)| t)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        // Present in the paper's q, w, a, c order (declaration order).
        ids.sort_by_key(|t| t.0);
        let exact: Vec<String> = ids.into_iter().map(|t| fsa.state(t).name.clone()).collect();
        t.row([name.to_string(), format!("{{{adj}}}"), format!("{{{}}}", exact.join(", "))]);
    }
    out.push_str(&t.render());
    out.push_str("\nPaper table: CS(q)={q,w,a}  CS(w)={q,w,a,c}  CS(a)={q,w,a}  CS(c)={w,c}\n");
    out
}

/// E5 — "Blocking in the canonical 2PC protocol": both violation kinds,
/// with concrete witnesses from the exact analysis.
pub fn e5_blocking_2pc() -> String {
    let mut out = String::new();
    let can = canonical_2pc();
    out.push_str(&format!("{can}\n"));
    out.push_str("Lemma violations (canonical form):\n");
    for v in can.lemma_violations() {
        out.push_str(&format!("  - {v}\n"));
    }
    out.push('\n');
    for p in [nbc_core::protocols::central_2pc(3), nbc_core::protocols::decentralized_2pc(3)] {
        let r = theorem::check(&p).expect("analyzable");
        out.push_str(&format!("{r}"));
    }
    out.push_str(
        "\nBoth 2PC protocols can block for either reason, exactly as the \
         paper notes.\n",
    );
    out
}

/// E11 — the fundamental nonblocking theorem across the whole catalog.
pub fn e11_theorem_catalog() -> String {
    let mut t = Table::new([
        "protocol",
        "cond.1 violations",
        "cond.2 violations",
        "nonblocking?",
        "clean sites",
    ]);
    for n in [3usize, 4] {
        for p in catalog(n) {
            let r = theorem::check(&p).expect("analyzable");
            t.row([
                p.name.clone(),
                r.mixed_concurrency().count().to_string(),
                r.noncommittable_sees_commit().count().to_string(),
                if r.nonblocking() { "yes".into() } else { "NO".to_string() },
                format!("{}/{}", r.clean.iter().filter(|&&c| c).count(), n),
            ]);
        }
    }
    format!(
        "{}\nShape: both 2PC protocols violate both conditions; both 3PC \
         protocols satisfy the theorem at every site.\n",
        t.render()
    )
}

/// E12 — synchronicity within one state transition, plus the committable
/// states per protocol ("a blocking protocol usually has only one
/// committable state, while nonblocking protocols always have more").
pub fn e12_synchronicity() -> String {
    let mut t = Table::new([
        "protocol",
        "synchronous within one?",
        "max lead (executing sites)",
        "committable state classes",
    ]);
    for p in catalog(3) {
        let a = Analysis::build(&p).expect("analyzable");
        let r = sync_check::check_with(&p, &a, nbc_core::ReachOptions::default());
        let mut committable = std::collections::BTreeSet::new();
        for site in p.sites() {
            let fsa = p.fsa(site);
            for i in 0..fsa.state_count() {
                let s = StateId(i as u32);
                if a.occupied(site, s) && a.committable(site, s) {
                    committable.insert(fsa.state(s).class.letter());
                }
            }
        }
        t.row([
            p.name.clone(),
            if r.synchronous_within_one() { "yes".into() } else { "NO".to_string() },
            r.max_lead.to_string(),
            committable.into_iter().map(String::from).collect::<Vec<_>>().join(", "),
        ]);
    }
    format!(
        "{}\nShape: every catalog protocol is synchronous within one state \
         transition; 2PC has only {{c}} committable, 3PC has {{p, c}}.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_matches_paper_table() {
        let s = e4_concurrency_sets();
        assert!(s.contains("{q, w, a, c}"), "{s}");
        assert!(s.contains("{w, c}"), "{s}");
    }

    #[test]
    fn e5_reports_both_kinds() {
        let s = e5_blocking_2pc();
        assert!(s.contains("adjacent to both"));
        assert!(s.contains("noncommittable"));
        assert!(s.contains("BLOCKING"));
    }

    #[test]
    fn e11_shape() {
        let s = e11_theorem_catalog();
        assert!(s.contains("NO"));
        assert!(s.contains("yes"));
    }

    #[test]
    fn e12_committable_classes() {
        let s = e12_synchronicity();
        assert!(s.contains("p, c"), "{s}");
    }
}
