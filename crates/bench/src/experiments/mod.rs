//! The experiment registry: one entry per paper figure/table (E1–E12) and
//! per quantitative shape claim (B1–B5). See `DESIGN.md` for the index and
//! `EXPERIMENTS.md` for paper-vs-measured notes.

mod analysis_exps;
mod extensions;
mod figures;
mod graphs;
mod perf;
mod synthesis_exps;
mod termination_exps;

/// One runnable experiment.
pub struct Experiment {
    /// Identifier used on the command line, e.g. `"e4"`.
    pub id: &'static str,
    /// What the experiment regenerates.
    pub title: &'static str,
    /// Produce the report.
    pub run: fn() -> String,
}

/// All experiments in presentation order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            title: "Fig.: the FSAs for the central-site 2PC protocol",
            run: figures::e1_central_2pc_fsas,
        },
        Experiment {
            id: "e2",
            title: "Fig.: reachable state graph for the 2-site 2PC protocol",
            run: graphs::e2_two_site_2pc_graph,
        },
        Experiment {
            id: "e3",
            title: "Fig.: the decentralized 2PC protocol",
            run: figures::e3_decentralized_2pc_fsa,
        },
        Experiment {
            id: "e4",
            title: "Table: concurrency sets in the canonical 2PC protocol",
            run: analysis_exps::e4_concurrency_sets,
        },
        Experiment {
            id: "e5",
            title: "Blocking in the canonical 2PC protocol (theorem violations)",
            run: analysis_exps::e5_blocking_2pc,
        },
        Experiment {
            id: "e6",
            title: "Making 2PC nonblocking: buffer-state synthesis -> 3PC",
            run: synthesis_exps::e6_synthesis,
        },
        Experiment {
            id: "e7",
            title: "Fig.: a nonblocking central-site 3PC protocol",
            run: figures::e7_central_3pc_fsas,
        },
        Experiment {
            id: "e8",
            title: "Fig.: a nonblocking decentralized 3PC protocol",
            run: figures::e8_decentralized_3pc_fsa,
        },
        Experiment {
            id: "e9",
            title: "Termination protocol for the canonical 3PC (decision table + crash sweep)",
            run: termination_exps::e9_termination,
        },
        Experiment {
            id: "e10",
            title: "Corollary: k-resiliency of the catalog",
            run: termination_exps::e10_resilience,
        },
        Experiment {
            id: "e11",
            title: "Fundamental nonblocking theorem across the catalog",
            run: analysis_exps::e11_theorem_catalog,
        },
        Experiment {
            id: "e12",
            title: "Synchronicity within one state transition",
            run: analysis_exps::e12_synchronicity,
        },
        Experiment {
            id: "b1",
            title: "Blocking probability vs. crash point (2PC vs 3PC)",
            run: perf::b1_blocking_probability,
        },
        Experiment {
            id: "b2",
            title: "Message complexity per protocol and paradigm",
            run: perf::b2_message_complexity,
        },
        Experiment {
            id: "b3",
            title: "Latency in phases and simulated time",
            run: perf::b3_latency,
        },
        Experiment {
            id: "b4",
            title: "Transaction throughput under coordinator crashes (2PC vs 3PC)",
            run: perf::b4_throughput_under_failures,
        },
        Experiment {
            id: "b5",
            title: "Reachable-state-graph growth with the number of sites",
            run: graphs::b5_graph_growth,
        },
        Experiment {
            id: "b6",
            title: "Concurrent commit pipeline with group commit vs the serial cluster",
            run: perf::b6_pipeline_group_commit,
        },
        Experiment {
            id: "b8",
            title: "Paxos Commit: goodput vs acceptor-fault tolerance F under acceptor crashes",
            run: perf::b8_paxos_resilience,
        },
        Experiment {
            id: "x1",
            title: "Extension/ablation: the k-phase commit family (is one buffer state enough?)",
            run: extensions::x1_kpc_ablation,
        },
        Experiment {
            id: "x2",
            title: "Extension: independent recovery classification",
            run: extensions::x2_independent_recovery,
        },
        Experiment {
            id: "x3",
            title: "Extension: why 'the network never fails' matters (3PC under partition)",
            run: extensions::x3_partition_unsafety,
        },
        Experiment {
            id: "x4",
            title: "Extension: quorum-gated termination closes the partition window",
            run: extensions::x4_quorum_termination,
        },
    ]
}

/// Find one experiment by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let exps = all();
        let mut ids: Vec<&str> = exps.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), exps.len());
        assert_eq!(exps.len(), 23);
    }

    #[test]
    fn lookup_by_id() {
        assert!(by_id("E4").is_some());
        assert!(by_id("b5").is_some());
        assert!(by_id("zzz").is_none());
    }
}
