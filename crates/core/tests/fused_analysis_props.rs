//! Property test: the fused, bitset-based analysis (facts accumulated
//! inside the BFS, with or without streaming, at any thread count) is
//! exactly equal to an independently computed naive reference over the
//! serial reachable graph — occupancy, yes-votedness, committability, full
//! concurrency sets, class projections, and theorem witnesses.
//!
//! The naive reference below deliberately re-derives everything from first
//! principles (nested loops and `BTreeSet` inserts over the retained node
//! vector, its own yes-free reachability), sharing no code with the
//! production accumulator, so a bug in the bitset machinery cannot cancel
//! itself out.

use std::collections::BTreeSet;

use nbc_core::protocols::catalog;
use nbc_core::{Analysis, ReachGraph, ReachOptions, SiteId, StateClass, StateId, Vote};

/// Naive per-(site, state) facts computed straight from the definitions.
struct Reference {
    cs: Vec<Vec<BTreeSet<(SiteId, StateId)>>>,
    occupied: Vec<Vec<bool>>,
    yes_voted: Vec<Vec<bool>>,
    committable: Vec<Vec<bool>>,
}

fn naive_reference(p: &nbc_core::Protocol, g: &ReachGraph) -> Reference {
    // Yes-voted: state t is yes-voted iff unreachable without a yes vote.
    let yes_voted: Vec<Vec<bool>> = p
        .fsas()
        .iter()
        .map(|fsa| {
            let mut no_yes = vec![false; fsa.state_count()];
            no_yes[fsa.initial().index()] = true;
            let mut changed = true;
            while changed {
                changed = false;
                for t in fsa.transitions() {
                    if no_yes[t.from.index()] && t.vote != Some(Vote::Yes) && !no_yes[t.to.index()]
                    {
                        no_yes[t.to.index()] = true;
                        changed = true;
                    }
                }
            }
            no_yes.iter().map(|&r| !r).collect()
        })
        .collect();

    let counts: Vec<usize> = p.fsas().iter().map(|f| f.state_count()).collect();
    let mut cs: Vec<Vec<BTreeSet<(SiteId, StateId)>>> =
        counts.iter().map(|&c| vec![BTreeSet::new(); c]).collect();
    let mut occupied: Vec<Vec<bool>> = counts.iter().map(|&c| vec![false; c]).collect();
    let mut committable: Vec<Vec<bool>> = counts.iter().map(|&c| vec![true; c]).collect();

    for node in g.nodes() {
        let all_yes = node.locals.iter().enumerate().all(|(j, &t)| yes_voted[j][t.index()]);
        for (i, &s) in node.locals.iter().enumerate() {
            occupied[i][s.index()] = true;
            if !all_yes {
                committable[i][s.index()] = false;
            }
            for (j, &t) in node.locals.iter().enumerate() {
                if i != j {
                    cs[i][s.index()].insert((SiteId(j as u32), t));
                }
            }
        }
    }

    Reference { cs, occupied, yes_voted, committable }
}

fn assert_analysis_matches(p: &nbc_core::Protocol, r: &Reference, a: &Analysis, ctx: &str) {
    assert_eq!(a.n_sites(), p.n_sites(), "{ctx}: n_sites");
    for site in p.sites() {
        let i = site.index();
        for idx in 0..p.fsa(site).state_count() {
            let s = StateId(idx as u32);
            assert_eq!(a.occupied(site, s), r.occupied[i][idx], "{ctx}: occupied {site} {idx}");
            assert_eq!(a.yes_voted(site, s), r.yes_voted[i][idx], "{ctx}: yes_voted {site} {idx}");
            assert_eq!(
                a.committable(site, s),
                r.committable[i][idx],
                "{ctx}: committable {site} {idx}"
            );
            // Full concurrency set, through both the lazy BTreeSet view and
            // the non-materializing slot iterator.
            assert_eq!(*a.concurrency_set(site, s), r.cs[i][idx], "{ctx}: cs {site} {idx}");
            let slots: BTreeSet<_> = a.concurrency_slots(site, s).collect();
            assert_eq!(slots, r.cs[i][idx], "{ctx}: cs slots {site} {idx}");
            // Class projection and commit/abort queries + witnesses.
            let classes: BTreeSet<StateClass> =
                r.cs[i][idx].iter().map(|&(j, t)| a.class_of(j, t)).collect();
            assert_eq!(a.concurrency_classes(site, s), classes, "{ctx}: classes {site} {idx}");
            let want_commit = r.cs[i][idx]
                .iter()
                .find(|&&(j, t)| a.class_of(j, t) == StateClass::Committed)
                .copied();
            let want_abort = r.cs[i][idx]
                .iter()
                .find(|&&(j, t)| a.class_of(j, t) == StateClass::Aborted)
                .copied();
            assert_eq!(a.cs_has_commit(site, s), want_commit.is_some(), "{ctx}: has_commit");
            assert_eq!(a.cs_has_abort(site, s), want_abort.is_some(), "{ctx}: has_abort");
            assert_eq!(a.cs_witnesses(site, s), (want_commit, want_abort), "{ctx}: witnesses");
        }
    }
}

#[test]
fn fused_analysis_equals_naive_reference_across_catalog() {
    for n in [2usize, 3, 4] {
        for p in catalog(n) {
            let serial = ReachGraph::build_serial(&p, ReachOptions::default()).unwrap();
            let reference = naive_reference(&p, &serial);

            // The retained post-hoc path (`from_graph`) over the serial graph.
            let posthoc = Analysis::from_graph(&p, serial);
            assert_analysis_matches(&p, &reference, &posthoc, &format!("{} n={n} posthoc", p.name));

            // The fused path: threads 1/2/4 × streaming off/on, with the
            // inline threshold forced down so the parallel machinery and
            // its OR-merges actually run on these small graphs.
            for threads in [1usize, 2, 4] {
                for stream in [false, true] {
                    let opts = ReachOptions {
                        threads,
                        parallel_frontier_min: 1,
                        stream,
                        ..ReachOptions::default()
                    };
                    let fused = Analysis::build_with(&p, opts).unwrap();
                    assert_eq!(fused.graph().is_none(), stream);
                    assert_analysis_matches(
                        &p,
                        &reference,
                        &fused,
                        &format!("{} n={n} threads={threads} stream={stream}", p.name),
                    );
                }
            }
        }
    }
}
