//! Global transaction states and the reachable state graph.
//!
//! The paper defines the *global state* of a distributed transaction as a
//! vector containing the local states of all FSAs plus the outstanding
//! messages in the network; it "defines the complete processing state of a
//! transaction". The graph of all global states reachable from the initial
//! global state is the *reachable state graph*, from which concurrency
//! sets, committability, and the fundamental nonblocking theorem are all
//! computed.
//!
//! Classification of global states (paper §"Comments on reachable state
//! graphs"):
//! * **final** — every local state in the vector is final;
//! * **terminal** — no immediately reachable successors;
//! * **deadlocked** — terminal but not final;
//! * **inconsistent** — contains both a local commit and a local abort
//!   state. A protocol that preserves transaction atomicity can have *no*
//!   reachable inconsistent state.
//!
//! The graph "grows exponentially with the number of sites, but, in
//! practice, we seldom need to actually build it" — we do build it (that is
//! the point of the reproduction), with a configurable node bound.
//!
//! ## Parallel construction
//!
//! [`ReachGraph::build_with`] runs a *frontier-parallel* BFS: the graph is
//! grown level by level, each level's frontier is split across scoped
//! worker threads that expand successors independently, and the successors
//! are interned into shard-by-hash tables (one hash map per shard, shard
//! chosen by a deterministic hash of the global state, so shards can be
//! probed concurrently without locks). Node ids are then assigned in a
//! deterministic serial merge — in order of each new state's *first
//! occurrence* in the level's successor stream, which is exactly the
//! discovery order of the serial FIFO BFS. The result is therefore
//! **bit-identical** to [`ReachGraph::build_serial`]: same node ids, same
//! edge order, same classification counts, for any thread count. The
//! determinism tests assert this across the whole catalog.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Range;

use crate::codec::{PackedArena, StateCodec};
use crate::error::ProtocolError;
use crate::extmem::{RunSet, SpillStats};
use crate::fsa::{Consume, StateClass};
use crate::ids::{MsgKind, SiteId, StateId};
use crate::protocol::Protocol;

/// Index of a node in the reachable state graph.
pub type NodeId = u32;

/// Address of an outstanding message: who sent it, to whom, what kind.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MsgAddr {
    /// Sender.
    pub src: SiteId,
    /// Receiver.
    pub dst: SiteId,
    /// Message kind.
    pub kind: MsgKind,
}

/// The multiset of outstanding messages, kept as a sorted vector of
/// `(address, count)` pairs with strictly positive counts so that equal
/// multisets are structurally equal (and hash equal).
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct Msgs(Vec<(MsgAddr, u16)>);

impl Msgs {
    /// Empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from addresses (duplicates accumulate).
    pub fn from_addrs(iter: impl IntoIterator<Item = MsgAddr>) -> Result<Self, ProtocolError> {
        let mut m = Self::new();
        for a in iter {
            m.add(a)?;
        }
        Ok(m)
    }

    /// Number of outstanding messages (with multiplicity).
    pub fn len(&self) -> usize {
        self.0.iter().map(|&(_, c)| c as usize).sum()
    }

    /// True if no messages are outstanding.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Multiplicity of `addr`.
    pub fn count(&self, addr: MsgAddr) -> u16 {
        match self.0.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => self.0[i].1,
            Err(_) => 0,
        }
    }

    /// True if at least one message with this address is outstanding.
    pub fn contains(&self, addr: MsgAddr) -> bool {
        self.count(addr) > 0
    }

    /// Add one message.
    ///
    /// Fails with [`ProtocolError::MsgOverflow`] if the multiplicity of
    /// `addr` would exceed `u16::MAX` — in release builds an unchecked
    /// increment would silently wrap to 0 and corrupt the multiset.
    pub fn add(&mut self, addr: MsgAddr) -> Result<(), ProtocolError> {
        match self.0.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => {
                self.0[i].1 = self.0[i].1.checked_add(1).ok_or(ProtocolError::MsgOverflow {
                    src: addr.src,
                    dst: addr.dst,
                    kind: addr.kind,
                })?;
            }
            Err(i) => self.0.insert(i, (addr, 1)),
        }
        Ok(())
    }

    /// Remove one message; panics if absent (callers check first).
    pub fn remove(&mut self, addr: MsgAddr) {
        match self.0.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => {
                if self.0[i].1 == 1 {
                    self.0.remove(i);
                } else {
                    self.0[i].1 -= 1;
                }
            }
            Err(_) => panic!("removing absent message {addr:?}"),
        }
    }

    /// Iterate over `(address, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MsgAddr, u16)> + '_ {
        self.0.iter().copied()
    }

    /// Number of distinct addresses with outstanding messages.
    pub fn distinct_addrs(&self) -> usize {
        self.0.len()
    }

    /// Rebuild from `(address, count)` pairs already sorted by address
    /// with strictly positive counts — the codec's decode path, which
    /// reconstructs counts wholesale instead of `add`ing one at a time.
    pub(crate) fn from_sorted_counts(v: Vec<(MsgAddr, u16)>) -> Self {
        debug_assert!(v.windows(2).all(|w| w[0].0 < w[1].0), "addresses must be sorted");
        debug_assert!(v.iter().all(|&(_, c)| c > 0), "counts must be positive");
        Self(v)
    }
}

/// One global transaction state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GlobalState {
    /// `locals[i]` = local state of site `i`.
    pub locals: Box<[StateId]>,
    /// Outstanding messages on the network tape.
    pub msgs: Msgs,
}

impl GlobalState {
    /// An empty placeholder used when a state is moved out of a scratch
    /// buffer during the parallel merge.
    fn hollow() -> Self {
        Self { locals: Box::from([]), msgs: Msgs::new() }
    }
}

/// An edge of the reachable state graph: site `site` fired transition
/// `transition` (an index into its FSA's transition table). For `Any`
/// triggers, `any_choice` records which source's message was consumed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Successor global state.
    pub to: NodeId,
    /// Site whose transition fired.
    pub site: SiteId,
    /// Index into the firing site's transition table.
    pub transition: u32,
    /// For `Any` triggers, the source whose message was consumed.
    pub any_choice: Option<SiteId>,
}

/// A per-level progress snapshot reported by graph construction when
/// [`ReachOptions::progress`] is set. One snapshot is delivered (from the
/// coordinating thread, after the level barrier) for every completed BFS
/// level; the hook observes the build but cannot perturb it — node ids,
/// edge order, and fold results are identical with or without it.
#[derive(Copy, Clone, Debug)]
pub struct LevelProgress {
    /// The completed BFS level (`0` holds only the initial state).
    pub level: usize,
    /// States expanded at this level (the frontier width).
    pub frontier: usize,
    /// Distinct new states this level's expansion discovered.
    pub new_states: usize,
    /// Successor occurrences that resolved to already-known states.
    pub dedup_hits: u64,
    /// Distinct states discovered so far, this level included.
    pub total: usize,
}

/// Options for graph construction.
#[derive(Copy, Clone, Debug)]
pub struct ReachOptions {
    /// Abort with [`ProtocolError::GraphTooLarge`] beyond this many nodes.
    pub max_states: usize,
    /// Worker threads for frontier expansion and interning. `0` (the
    /// default) picks [`std::thread::available_parallelism`] capped at 8;
    /// `1` forces the serial reference path.
    pub threads: usize,
    /// Frontiers smaller than this are expanded inline even when `threads`
    /// allows fan-out — thread spawn overhead dwarfs the work on the
    /// shallow levels every graph starts with.
    pub parallel_frontier_min: usize,
    /// Stream the reachability fold instead of retaining the graph:
    /// [`crate::Analysis::build_with`] folds its facts level by level and
    /// retires node payloads as soon as a level has been expanded, keeping
    /// only the current frontier resident. The resulting analysis has no
    /// [`ReachGraph`] (`Analysis::graph()` returns `None`), so graph
    /// consumers (`dot`, termination verification, lead measurement) need
    /// the default retaining mode. Ignored by [`ReachGraph::build_with`]
    /// itself — a graph is inherently retained.
    pub stream: bool,
    /// Called once per completed BFS level with a [`LevelProgress`]
    /// snapshot. A plain `fn` pointer (not a closure) so the options stay
    /// `Copy`; `None` (the default) costs nothing.
    pub progress: Option<fn(&LevelProgress)>,
    /// Approximate byte budget for the streaming fold's retired-level
    /// fingerprint set. `0` (the default) keeps everything in RAM; any
    /// other value makes the fold spill the hot set to sorted temp-file
    /// runs ([`crate::extmem`]) whenever it outgrows the budget, answering
    /// membership at each level barrier by one batched merge pass. Every
    /// deterministic output — fold results, [`StreamStats`] counts,
    /// [`LevelProgress`] snapshots — is byte-identical to the unlimited
    /// path; only [`StreamStats::spill`] differs. Ignored by the retaining
    /// graph builders, which must hold every node anyway.
    pub mem_budget: usize,
}

impl Default for ReachOptions {
    fn default() -> Self {
        Self {
            max_states: 1 << 22,
            threads: 0,
            parallel_frontier_min: 512,
            stream: false,
            progress: None,
            mem_budget: 0,
        }
    }
}

impl ReachOptions {
    /// Same options with an explicit thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Same options with streaming (non-retaining) analysis toggled.
    pub fn with_streaming(mut self, stream: bool) -> Self {
        self.stream = stream;
        self
    }

    /// Same options with a per-level progress hook installed.
    pub fn with_progress(mut self, hook: fn(&LevelProgress)) -> Self {
        self.progress = Some(hook);
        self
    }

    /// Same options with a spill byte budget for the streaming fold.
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget = bytes;
        self
    }

    /// The effective worker count for these options.
    fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()).min(8),
            t => t,
        }
    }
}

/// The reachable state graph of a protocol (in the absence of failures).
#[derive(Clone)]
pub struct ReachGraph {
    nodes: Vec<GlobalState>,
    out_edges: Vec<Vec<Edge>>,
    initial: NodeId,
    /// `classes[i][s]` = class of state `s` of site `i` (copied from the
    /// protocol so the graph is self-contained for classification).
    classes: Vec<Vec<StateClass>>,
}

/// A hook folded over every distinct reachable global state during BFS
/// construction — the fusion point for analyses that would otherwise need
/// a post-hoc pass over the finished node vector.
///
/// Every distinct state belongs to exactly one BFS frontier and is folded
/// exactly once, when that frontier is expanded (the serial path folds on
/// dequeue, which visits the same set). The contract that keeps parallel
/// folding bit-identical to serial: `fold` must only accumulate *monotone,
/// order-independent* facts (set-once bits), `split` must return an empty
/// accumulator sharing only read-only inputs, and `absorb` must merge with
/// a commutative, associative, idempotent operation (bit-OR for the
/// concurrency facts). Then any chunking of the frontier and any absorb
/// order produce identical bits.
pub(crate) trait StateFolder: Send {
    /// Fold one distinct reachable global state.
    fn fold(&mut self, state: &GlobalState);
    /// An empty accumulator for a worker thread to fold its chunk into.
    fn split(&self) -> Self
    where
        Self: Sized;
    /// Merge a worker's accumulator back at the level barrier.
    fn absorb(&mut self, other: Self)
    where
        Self: Sized;
}

/// The no-op folder behind the plain graph-building entry points.
pub(crate) struct NoFolder;

impl StateFolder for NoFolder {
    fn fold(&mut self, _: &GlobalState) {}
    fn split(&self) -> Self {
        NoFolder
    }
    fn absorb(&mut self, _: Self) {}
}

/// A successor produced during frontier expansion, before interning: the
/// state, its deterministic hash (used for shard routing and table
/// probing), and the edge with a placeholder target.
struct Succ {
    state: GlobalState,
    hash: u64,
    edge: Edge,
}

/// Shard-local interning verdict for one successor occurrence.
#[derive(Copy, Clone)]
enum Interned {
    /// The state already has a node id (discovered on an earlier level).
    Old(NodeId),
    /// The state is new this level; payload is the shard-local index.
    New(u32),
}

fn state_hash(state: &GlobalState) -> u64 {
    // DefaultHasher::new() uses fixed keys, so the hash — and with it the
    // shard routing — is deterministic for a given state.
    let mut h = DefaultHasher::new();
    state.hash(&mut h);
    h.finish()
}

/// Pass-through hasher for maps keyed by an already-computed `u64` state
/// hash: each global state is hashed exactly once, at expansion time, and
/// every table probe after that is a plain integer lookup.
#[derive(Clone, Default)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("identity hasher is only used with u64 keys");
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// One shard's intern table: precomputed state hash → ids of the nodes
/// with that hash (a chain, in case of 64-bit collisions). Storing ids
/// instead of states avoids cloning every interned state; candidates are
/// compared against the node array.
type ShardTable = HashMap<u64, Vec<NodeId>, std::hash::BuildHasherDefault<IdentityHasher>>;

/// What one expansion worker returns: the flattened successor stream of its
/// chunk plus the per-source successor counts.
type ExpandedChunk = Result<(Vec<Succ>, Vec<u32>), ProtocolError>;

/// What interning one shard yields: verdicts aligned with the shard's
/// occurrence list plus the first-occurrence indices of its new states.
type ShardVerdicts = (Vec<Interned>, Vec<u32>);

/// Resolve one shard's occurrences against its intern table plus a
/// level-local map of states first seen this level. Returns the verdicts
/// (aligned with `occs`) and the first-occurrence index of each new state,
/// in ascending order.
fn intern_shard(
    occs: &[u32],
    table: &ShardTable,
    flat: &[Succ],
    nodes: &[GlobalState],
) -> ShardVerdicts {
    let mut verdicts = Vec::with_capacity(occs.len());
    let mut fresh: HashMap<u64, Vec<u32>, std::hash::BuildHasherDefault<IdentityHasher>> =
        HashMap::default();
    let mut first_occ: Vec<u32> = Vec::new();
    'occs: for &occ in occs {
        let s = &flat[occ as usize];
        if let Some(chain) = table.get(&s.hash) {
            for &id in chain {
                if nodes[id as usize] == s.state {
                    verdicts.push(Interned::Old(id));
                    continue 'occs;
                }
            }
        }
        let chain = fresh.entry(s.hash).or_default();
        for &local in chain.iter() {
            if flat[first_occ[local as usize] as usize].state == s.state {
                verdicts.push(Interned::New(local));
                continue 'occs;
            }
        }
        let local = first_occ.len() as u32;
        first_occ.push(occ);
        chain.push(local);
        verdicts.push(Interned::New(local));
    }
    (verdicts, first_occ)
}

impl ReachGraph {
    /// Build the reachable state graph with default options.
    pub fn build(protocol: &Protocol) -> Result<Self, ProtocolError> {
        Self::build_with(protocol, ReachOptions::default())
    }

    /// Build with explicit options.
    ///
    /// With `threads > 1` (or `threads == 0` on a multicore machine) this
    /// runs the frontier-parallel construction; the output is bit-identical
    /// to [`ReachGraph::build_serial`] in every case.
    pub fn build_with(protocol: &Protocol, opts: ReachOptions) -> Result<Self, ProtocolError> {
        Self::build_with_folder(protocol, opts, &mut NoFolder)
    }

    /// Build with explicit options, folding `folder` over every distinct
    /// state as it is discovered (each exactly once) — the fused-analysis
    /// entry point.
    pub(crate) fn build_with_folder<F: StateFolder>(
        protocol: &Protocol,
        opts: ReachOptions,
        folder: &mut F,
    ) -> Result<Self, ProtocolError> {
        let threads = opts.resolved_threads();
        if threads <= 1 {
            return Self::build_serial_folding(protocol, opts, folder);
        }
        Self::build_parallel(protocol, opts, threads, folder)
    }

    /// The serial reference implementation: a FIFO BFS over a single
    /// intern table. Kept as the ground truth the parallel construction is
    /// tested (and benchmarked) against.
    pub fn build_serial(protocol: &Protocol, opts: ReachOptions) -> Result<Self, ProtocolError> {
        Self::build_serial_folding(protocol, opts, &mut NoFolder)
    }

    /// Serial build folding `folder` over each state as it is dequeued.
    pub(crate) fn build_serial_folding<F: StateFolder>(
        protocol: &Protocol,
        opts: ReachOptions,
        folder: &mut F,
    ) -> Result<Self, ProtocolError> {
        let initial_state = initial_global_state(protocol)?;
        let mut nodes: Vec<GlobalState> = vec![initial_state.clone()];
        let mut index: HashMap<GlobalState, NodeId> = HashMap::new();
        index.insert(initial_state, 0);
        let mut out_edges: Vec<Vec<Edge>> = vec![Vec::new()];
        let mut queue: VecDeque<NodeId> = VecDeque::from([0]);

        // The FIFO queue dequeues ids in discovery order, so the level
        // structure is implicit: when the dequeued id crosses `level_end`
        // the previous frontier has been fully expanded.
        let (mut level, mut level_start, mut level_end) = (0usize, 0usize, 1usize);
        let mut dedup_hits = 0u64;

        let mut scratch: Vec<Succ> = Vec::new();
        while let Some(id) = queue.pop_front() {
            if let Some(hook) = opts.progress {
                if id as usize >= level_end {
                    hook(&LevelProgress {
                        level,
                        frontier: level_end - level_start,
                        new_states: nodes.len() - level_end,
                        dedup_hits,
                        total: nodes.len(),
                    });
                    level += 1;
                    level_start = level_end;
                    level_end = nodes.len();
                    dedup_hits = 0;
                }
            }
            let state = nodes[id as usize].clone();
            folder.fold(&state);
            scratch.clear();
            successors(protocol, &state, &mut scratch)?;
            let mut edges = Vec::with_capacity(scratch.len());
            for succ in scratch.drain(..) {
                let Succ { state: succ_state, mut edge, .. } = succ;
                let to = match index.get(&succ_state) {
                    Some(&id) => {
                        dedup_hits += 1;
                        id
                    }
                    None => {
                        if nodes.len() >= opts.max_states {
                            return Err(ProtocolError::GraphTooLarge { limit: opts.max_states });
                        }
                        let id = nodes.len() as NodeId;
                        nodes.push(succ_state.clone());
                        index.insert(succ_state, id);
                        out_edges.push(Vec::new());
                        queue.push_back(id);
                        id
                    }
                };
                edge.to = to;
                edges.push(edge);
            }
            out_edges[id as usize] = edges;
        }
        if let Some(hook) = opts.progress {
            hook(&LevelProgress {
                level,
                frontier: level_end - level_start,
                new_states: nodes.len() - level_end,
                dedup_hits,
                total: nodes.len(),
            });
        }

        Ok(Self { nodes, out_edges, initial: 0, classes: class_table(protocol) })
    }

    /// Frontier-parallel construction (see the module docs for the scheme
    /// and the determinism argument). Each expansion worker folds its
    /// frontier chunk into a [`StateFolder::split`] of `folder`, absorbed
    /// back at the level barrier — OR-merge order cannot change the bits.
    fn build_parallel<F: StateFolder>(
        protocol: &Protocol,
        opts: ReachOptions,
        threads: usize,
        folder: &mut F,
    ) -> Result<Self, ProtocolError> {
        // Power-of-two shard count a few times the worker count keeps the
        // per-shard tables small and the interning fan-out balanced.
        let shards = (threads * 4).next_power_of_two().min(64);
        let shard_of = |hash: u64| (hash as usize) & (shards - 1);

        let initial_state = initial_global_state(protocol)?;
        let mut tables: Vec<ShardTable> = vec![ShardTable::default(); shards];
        let initial_hash = state_hash(&initial_state);
        tables[shard_of(initial_hash)].entry(initial_hash).or_default().push(0);
        let mut nodes: Vec<GlobalState> = vec![initial_state];
        let mut out_edges: Vec<Vec<Edge>> = vec![Vec::new()];
        let mut level: Range<usize> = 0..1;
        let mut level_no = 0usize;

        while !level.is_empty() {
            // 1. Expand the frontier into the level's successor stream
            //    (`flat`, with `counts[k]` successors for the k-th frontier
            //    node). Position in this stream — the "occurrence index" —
            //    is exactly the serial BFS's discovery scan order. This is
            //    the hot part (state cloning, multiset edits, hashing) and
            //    parallelizes embarrassingly.
            let expand_chunk = |chunk: &[GlobalState],
                                fold: &mut F|
             -> Result<(Vec<Succ>, Vec<u32>), ProtocolError> {
                let mut flat = Vec::with_capacity(chunk.len() * 4);
                let mut counts = Vec::with_capacity(chunk.len());
                for s in chunk {
                    fold.fold(s);
                    let start = flat.len();
                    successors(protocol, s, &mut flat)?;
                    for succ in &mut flat[start..] {
                        succ.hash = state_hash(&succ.state);
                    }
                    counts.push((flat.len() - start) as u32);
                }
                Ok((flat, counts))
            };
            let (mut flat, mut counts) = (Vec::new(), Vec::new());
            {
                let frontier = &nodes[level.clone()];
                if frontier.len() >= opts.parallel_frontier_min {
                    let chunk_len = frontier.len().div_ceil(threads);
                    let expand_chunk = &expand_chunk;
                    let results: Vec<(F, ExpandedChunk)> = std::thread::scope(|scope| {
                        let handles: Vec<_> = frontier
                            .chunks(chunk_len)
                            .map(|chunk| {
                                let mut fold = folder.split();
                                scope.spawn(move || {
                                    let r = expand_chunk(chunk, &mut fold);
                                    (fold, r)
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().expect("expand worker")).collect()
                    });
                    for (fold, r) in results {
                        folder.absorb(fold);
                        let (f, c) = r?;
                        flat.extend(f);
                        counts.extend(c);
                    }
                } else {
                    (flat, counts) = expand_chunk(frontier, folder)?;
                }
            }

            // 2. Route each occurrence to its shard (ascending occurrence
            //    order within every shard, by construction).
            let mut shard_occs: Vec<Vec<u32>> = vec![Vec::new(); shards];
            for (occ, s) in flat.iter().enumerate() {
                shard_occs[shard_of(s.hash)].push(occ as u32);
            }

            // 3. Intern per shard: each shard resolves its occurrences
            //    against its own table plus a level-local map of states
            //    first seen this level. Shards are independent, so workers
            //    take them round-robin.
            let shard_results: Vec<ShardVerdicts> = if flat.len() >= opts.parallel_frontier_min {
                let (flat, nodes, shard_occs, tables) = (&flat, &nodes, &shard_occs, &tables);
                let worker_out: Vec<Vec<(usize, ShardVerdicts)>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|w| {
                            scope.spawn(move || {
                                (w..shards)
                                    .step_by(threads)
                                    .map(|sh| {
                                        (
                                            sh,
                                            intern_shard(&shard_occs[sh], &tables[sh], flat, nodes),
                                        )
                                    })
                                    .collect()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("intern worker")).collect()
                });
                let mut results: Vec<Option<(Vec<Interned>, Vec<u32>)>> =
                    (0..shards).map(|_| None).collect();
                for (sh, res) in worker_out.into_iter().flatten() {
                    results[sh] = Some(res);
                }
                results.into_iter().map(|r| r.expect("every shard interned")).collect()
            } else {
                (0..shards)
                    .map(|sh| intern_shard(&shard_occs[sh], &tables[sh], &flat, &nodes))
                    .collect()
            };

            // 4. Deterministic merge: assign node ids to new states in
            //    ascending first-occurrence order — the serial discovery
            //    order — regardless of which shard holds them. States move
            //    out of the stream; the tables only record ids.
            let mut news: Vec<(u32, u32, u32)> = Vec::new(); // (first_occ, shard, local)
            for (sh, (_, first_occ)) in shard_results.iter().enumerate() {
                for (local, &occ) in first_occ.iter().enumerate() {
                    news.push((occ, sh as u32, local as u32));
                }
            }
            news.sort_unstable_by_key(|&(occ, _, _)| occ);
            let mut assigned: Vec<Vec<NodeId>> =
                shard_results.iter().map(|(_, f)| vec![0; f.len()]).collect();
            for &(occ, sh, local) in &news {
                if nodes.len() >= opts.max_states {
                    return Err(ProtocolError::GraphTooLarge { limit: opts.max_states });
                }
                let id = nodes.len() as NodeId;
                let succ = &mut flat[occ as usize];
                let hash = succ.hash;
                let state = std::mem::replace(&mut succ.state, GlobalState::hollow());
                tables[sh as usize].entry(hash).or_default().push(id);
                nodes.push(state);
                out_edges.push(Vec::new());
                assigned[sh as usize][local as usize] = id;
            }

            // 5. Resolve every occurrence to its final node id.
            let mut to_ids: Vec<NodeId> = vec![0; flat.len()];
            for (sh, (verdicts, _)) in shard_results.iter().enumerate() {
                for (&occ, &v) in shard_occs[sh].iter().zip(verdicts) {
                    to_ids[occ as usize] = match v {
                        Interned::Old(id) => id,
                        Interned::New(local) => assigned[sh][local as usize],
                    };
                }
            }

            // 6. Materialize the frontier's edge lists in stream order.
            let mut occ = 0usize;
            for (k, node_id) in level.clone().enumerate() {
                let mut edges = Vec::with_capacity(counts[k] as usize);
                for _ in 0..counts[k] {
                    let mut e = flat[occ].edge;
                    e.to = to_ids[occ];
                    edges.push(e);
                    occ += 1;
                }
                out_edges[node_id] = edges;
            }

            if let Some(hook) = opts.progress {
                hook(&LevelProgress {
                    level: level_no,
                    frontier: level.len(),
                    new_states: nodes.len() - level.end,
                    dedup_hits: (flat.len() - news.len()) as u64,
                    total: nodes.len(),
                });
            }
            level_no += 1;
            level = level.end..nodes.len();
        }

        Ok(Self { nodes, out_edges, initial: 0, classes: class_table(protocol) })
    }

    /// Number of reachable global states.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// The initial global state's node id.
    pub fn initial(&self) -> NodeId {
        self.initial
    }

    /// The global state at `id`.
    pub fn node(&self, id: NodeId) -> &GlobalState {
        &self.nodes[id as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[GlobalState] {
        &self.nodes
    }

    /// Out-edges of `id`.
    pub fn edges(&self, id: NodeId) -> &[Edge] {
        &self.out_edges[id as usize]
    }

    /// Class of local state `s` of site `i`.
    pub fn class_of(&self, site: SiteId, s: StateId) -> StateClass {
        self.classes[site.index()][s.index()]
    }

    /// A global state is *final* if all local states are final.
    pub fn is_final(&self, id: NodeId) -> bool {
        let g = self.node(id);
        g.locals.iter().enumerate().all(|(i, &s)| self.class_of(SiteId(i as u32), s).is_final())
    }

    /// A global state is *terminal* if it has no immediately reachable
    /// successors.
    pub fn is_terminal(&self, id: NodeId) -> bool {
        self.out_edges[id as usize].is_empty()
    }

    /// A terminal state that is not final is *deadlocked*.
    pub fn is_deadlocked(&self, id: NodeId) -> bool {
        self.is_terminal(id) && !self.is_final(id)
    }

    /// A global state is *inconsistent* if it contains both a local commit
    /// and a local abort state.
    pub fn is_inconsistent(&self, id: NodeId) -> bool {
        let g = self.node(id);
        let mut commit = false;
        let mut abort = false;
        for (i, &s) in g.locals.iter().enumerate() {
            match self.class_of(SiteId(i as u32), s) {
                StateClass::Committed => commit = true,
                StateClass::Aborted => abort = true,
                _ => {}
            }
        }
        commit && abort
    }

    /// Summary statistics over the whole graph.
    pub fn stats(&self) -> GraphStats {
        let mut st = GraphStats {
            nodes: self.node_count(),
            edges: self.edge_count(),
            ..GraphStats::default()
        };
        for id in 0..self.node_count() as NodeId {
            if self.is_final(id) {
                st.final_states += 1;
            }
            if self.is_terminal(id) {
                st.terminal_states += 1;
            }
            if self.is_deadlocked(id) {
                st.deadlocked_states += 1;
            }
            if self.is_inconsistent(id) {
                st.inconsistent_states += 1;
            }
        }
        st
    }
}

/// Aggregate classification counts for a reachable state graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Reachable global states.
    pub nodes: usize,
    /// Transitions between them.
    pub edges: usize,
    /// States where every local state is final.
    pub final_states: usize,
    /// States with no successors.
    pub terminal_states: usize,
    /// Terminal but not final.
    pub deadlocked_states: usize,
    /// States containing both a local commit and a local abort.
    pub inconsistent_states: usize,
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} global states, {} edges; {} final, {} terminal, {} deadlocked, {} inconsistent",
            self.nodes,
            self.edges,
            self.final_states,
            self.terminal_states,
            self.deadlocked_states,
            self.inconsistent_states
        )
    }
}

/// Statistics of a streaming (non-retaining) reachability fold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Distinct reachable global states folded.
    pub distinct_states: usize,
    /// BFS levels expanded (graph depth + 1).
    pub levels: usize,
    /// Peak number of simultaneously resident state payloads: a frontier
    /// plus its successor stream, the latter already filtered against the
    /// prior levels' fingerprints — the streaming analogue of the retained
    /// path's full node vector, and the memory-headroom figure of merit.
    pub peak_resident: usize,
    /// External-memory activity when [`ReachOptions::mem_budget`] is set
    /// (all zero otherwise). Deliberately excluded from the `Display`
    /// rendering: the human-readable analysis output must stay
    /// byte-identical between budgeted and unlimited runs.
    pub spill: SpillStats,
}

impl fmt::Display for StreamStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} global states across {} levels; peak resident {} states (graph not retained)",
            self.distinct_states, self.levels, self.peak_resident
        )
    }
}

/// A 128-bit fingerprint of any hashable value: a plain 64-bit hash
/// concatenated with a second, domain-separated one. Dedup by fingerprint
/// cannot compare candidates against retained payloads the way interning
/// tables do, so it relies on hash compaction; at 128 bits the collision
/// probability for `N` distinct values is about `N² / 2^129` — far below
/// 1e-18 even at the streaming builder's 2^22 default node bound. Shared
/// by the streaming reachability fold and the `nbc-check` model checker's
/// explored-state set.
pub fn fingerprint128<T: Hash + ?Sized>(value: &T) -> u128 {
    let mut h1 = DefaultHasher::new();
    value.hash(&mut h1);
    let mut h2 = DefaultHasher::new();
    h2.write_u64(0x9e37_79b9_7f4a_7c15);
    value.hash(&mut h2);
    ((h1.finish() as u128) << 64) | h2.finish() as u128
}

/// [`fingerprint128`] of a global state. The high half equals
/// [`state_hash`], so the streaming dedup set and the interning tables'
/// shard routing agree on the 64-bit prefix.
fn state_fingerprint(state: &GlobalState) -> u128 {
    fingerprint128(state)
}

/// Approximate resident cost of one fingerprint in the hot `HashSet<u128>`
/// (key + table overhead), used to convert [`ReachOptions::mem_budget`]
/// into a spill trigger.
const SEEN_ENTRY_COST: usize = 48;

fn spill_io(e: std::io::Error) -> ProtocolError {
    ProtocolError::SpillIo { detail: e.to_string() }
}

/// Fold `folder` over every distinct reachable global state *without*
/// retaining the graph: only the current frontier (bit-packed into a
/// [`PackedArena`] by the protocol's [`StateCodec`]) and its successor
/// stream are ever resident, and states are deduplicated by 128-bit
/// fingerprint (see [`state_fingerprint`]). Frontiers at least
/// [`ReachOptions::parallel_frontier_min`] wide are expanded by scoped
/// workers folding into [`StateFolder::split`]s, OR-merged at the level
/// barrier — same determinism argument as the retained parallel build.
///
/// With [`ReachOptions::mem_budget`] set, the retired-level fingerprint
/// set additionally spills to sorted temp-file runs whenever it outgrows
/// the budget; spilled fingerprints are re-checked by one batched merge
/// pass per level barrier, *before* any residency accounting, so every
/// deterministic output is byte-identical to the unlimited path.
///
/// Returns the fold's [`StreamStats`]; fails with
/// [`ProtocolError::GraphTooLarge`] at `opts.max_states` distinct states,
/// exactly like the retained builders.
pub(crate) fn fold_reachable<F: StateFolder>(
    protocol: &Protocol,
    opts: ReachOptions,
    folder: &mut F,
) -> Result<StreamStats, ProtocolError> {
    let threads = opts.resolved_threads();
    let codec = StateCodec::new(protocol);
    let initial = initial_global_state(protocol)?;
    let mut seen: HashSet<u128> = HashSet::new();
    seen.insert(state_fingerprint(&initial));
    let mut runs: RunSet<0> = RunSet::new();
    let mut frontier = PackedArena::new();
    frontier.push(&codec, &initial);
    let mut stats = StreamStats {
        distinct_states: 1,
        levels: 0,
        peak_resident: 1,
        spill: SpillStats::default(),
    };

    // Workers filter successors against the prior levels' hot `seen` set
    // (immutable while a level is in flight) and a chunk-local dedup set,
    // so the successor stream holds only states plausibly new at this
    // level — without it, high-multiplicity levels would make the stream
    // outgrow the retained node vector it is meant to undercut. Cross-chunk
    // duplicates (the same state discovered by two workers) survive to the
    // merge below, which is the arbiter of `distinct_states`. Fingerprints
    // already spilled to disk are filtered at the level barrier instead.
    type Stream = Result<(Vec<(GlobalState, u128)>, u64), ProtocolError>;
    let expand = |range: Range<usize>,
                  fold: &mut F,
                  frontier: &PackedArena,
                  seen: &HashSet<u128>|
     -> Stream {
        let mut scratch: Vec<Succ> = Vec::new();
        let mut local: HashSet<u128> = HashSet::new();
        let mut out = Vec::with_capacity(range.len() * 4);
        let mut dupes = 0u64;
        for i in range {
            let s = frontier.get(&codec, i);
            fold.fold(&s);
            scratch.clear();
            successors(protocol, &s, &mut scratch)?;
            for succ in scratch.drain(..) {
                let fp = state_fingerprint(&succ.state);
                if !seen.contains(&fp) && local.insert(fp) {
                    out.push((succ.state, fp));
                } else {
                    dupes += 1;
                }
            }
        }
        Ok((out, dupes))
    };

    while !frontier.is_empty() {
        stats.levels += 1;
        let mut dedup_hits = 0u64;
        let mut streams: Vec<Vec<(GlobalState, u128)>> =
            if threads > 1 && frontier.len() >= opts.parallel_frontier_min {
                let chunk_len = frontier.len().div_ceil(threads);
                let expand = &expand;
                let (seen_ref, frontier_ref) = (&seen, &frontier);
                let ranges: Vec<Range<usize>> = (0..frontier.len())
                    .step_by(chunk_len)
                    .map(|start| start..(start + chunk_len).min(frontier.len()))
                    .collect();
                let results: Vec<(F, Stream)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = ranges
                        .into_iter()
                        .map(|range| {
                            let mut fold = folder.split();
                            scope.spawn(move || {
                                let r = expand(range, &mut fold, frontier_ref, seen_ref);
                                (fold, r)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("stream worker")).collect()
                });
                let mut streams = Vec::new();
                for (fold, r) in results {
                    folder.absorb(fold);
                    let (stream, dupes) = r?;
                    dedup_hits += dupes;
                    streams.push(stream);
                }
                streams
            } else {
                let (stream, dupes) = expand(0..frontier.len(), folder, &frontier, &seen)?;
                dedup_hits += dupes;
                vec![stream]
            };

        // Disk filter at the level barrier, BEFORE the residency
        // accounting: occurrences whose fingerprint lives in a spilled run
        // are exactly those the unlimited path's workers would have
        // filtered against its complete in-RAM `seen`, so dropping them
        // here — counting each dropped occurrence as a dedup hit — keeps
        // `streamed`, `peak_resident`, and every progress snapshot
        // byte-identical to the unlimited path.
        if runs.run_count() > 0 {
            let mut cand: Vec<u128> = streams.iter().flatten().map(|&(_, fp)| fp).collect();
            cand.sort_unstable();
            cand.dedup();
            let flags = runs.contains_batch(&cand).map_err(spill_io)?;
            let on_disk: Vec<u128> =
                cand.into_iter().zip(flags).filter_map(|(k, hit)| hit.then_some(k)).collect();
            if !on_disk.is_empty() {
                for stream in &mut streams {
                    stream.retain(|&(_, fp)| {
                        if on_disk.binary_search(&fp).is_ok() {
                            dedup_hits += 1;
                            false
                        } else {
                            true
                        }
                    });
                }
            }
        }
        let streamed: usize = streams.iter().map(Vec::len).sum();
        stats.peak_resident = stats.peak_resident.max(frontier.len() + streamed);

        // Retire the expanded frontier; keep only this level's new states.
        let mut next = PackedArena::new();
        for (state, fp) in streams.into_iter().flatten() {
            if seen.insert(fp) {
                if stats.distinct_states >= opts.max_states {
                    return Err(ProtocolError::GraphTooLarge { limit: opts.max_states });
                }
                stats.distinct_states += 1;
                next.push(&codec, &state);
            } else {
                // Cross-chunk duplicate: the same state surfaced from two
                // workers' chunk-local streams.
                dedup_hits += 1;
            }
        }
        if let Some(hook) = opts.progress {
            hook(&LevelProgress {
                level: stats.levels - 1,
                frontier: frontier.len(),
                new_states: next.len(),
                dedup_hits,
                total: stats.distinct_states,
            });
        }
        // Spill the whole hot set once it outgrows the budget. Only at a
        // level boundary, and only the complete set: a partial or mid-level
        // spill could split one level's fingerprints between tiers and
        // misattribute a dedup hit between the worker filter and the
        // barrier filter.
        if opts.mem_budget > 0 && seen.len() * SEEN_ENTRY_COST > opts.mem_budget {
            let entries: Vec<(u128, [u8; 0])> = seen.drain().map(|fp| (fp, [])).collect();
            runs.spill(entries, |_, b| *b).map_err(spill_io)?;
        }
        frontier = next;
    }
    stats.spill = runs.stats();
    Ok(stats)
}

fn initial_global_state(protocol: &Protocol) -> Result<GlobalState, ProtocolError> {
    Ok(GlobalState {
        locals: protocol.fsas().iter().map(|f| f.initial()).collect(),
        msgs: Msgs::from_addrs(protocol.initial_msgs().iter().map(|m| MsgAddr {
            src: m.src,
            dst: m.dst,
            kind: m.kind,
        }))?,
    })
}

fn class_table(protocol: &Protocol) -> Vec<Vec<StateClass>> {
    protocol.fsas().iter().map(|f| f.states().iter().map(|s| s.class).collect()).collect()
}

/// Append the ordered successors of one global state to `out` — the
/// enumeration order (sites ascending, transitions in table order, `Any`
/// choices in trigger order) is what fixes node ids and edge order, so the
/// serial and parallel constructions share this single implementation.
/// Successor hashes are left 0; the parallel expander fills them in.
fn successors(
    protocol: &Protocol,
    state: &GlobalState,
    out: &mut Vec<Succ>,
) -> Result<(), ProtocolError> {
    let n = protocol.n_sites();
    for i in 0..n {
        let site = SiteId(i as u32);
        let fsa = protocol.fsa(site);
        let local = state.locals[i];
        for (ti, t) in fsa.outgoing(local) {
            match &t.consume {
                Consume::Spontaneous => {
                    out.push(make_succ(state, i, t.to, &[], &t.emit, site, ti, None)?);
                }
                Consume::All(v) => {
                    let needed: Vec<MsgAddr> =
                        v.iter().map(|&(src, kind)| MsgAddr { src, dst: site, kind }).collect();
                    // The guard must honor *multiplicity*, not mere
                    // containment: a trigger listing the same address twice
                    // needs two outstanding copies, or consuming them
                    // would underflow the multiset.
                    let enabled = needed.iter().all(|&a| {
                        let required = needed.iter().filter(|&&b| b == a).count();
                        state.msgs.count(a) as usize >= required
                    });
                    if enabled {
                        out.push(make_succ(state, i, t.to, &needed, &t.emit, site, ti, None)?);
                    }
                }
                Consume::Any(v) => {
                    for &(src, kind) in v {
                        let addr = MsgAddr { src, dst: site, kind };
                        if state.msgs.contains(addr) {
                            out.push(make_succ(
                                state,
                                i,
                                t.to,
                                std::slice::from_ref(&addr),
                                &t.emit,
                                site,
                                ti,
                                Some(src),
                            )?);
                        }
                    }
                }
                Consume::Quorum { k, srcs } => {
                    // One successor per k-subset of the *available* listed
                    // messages (sources are distinct by validation, so
                    // multiplicity is not a concern). Subsets enumerate in
                    // lexicographic index order — deterministic, like the
                    // `Any` choice order above.
                    let avail: Vec<MsgAddr> = srcs
                        .iter()
                        .map(|&(src, kind)| MsgAddr { src, dst: site, kind })
                        .filter(|&a| state.msgs.contains(a))
                        .collect();
                    let k = *k as usize;
                    if avail.len() >= k {
                        for combo in k_subsets(avail.len(), k) {
                            let consumed: Vec<MsgAddr> =
                                combo.iter().map(|&ix| avail[ix]).collect();
                            out.push(make_succ(
                                state, i, t.to, &consumed, &t.emit, site, ti, None,
                            )?);
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// All `k`-element index subsets of `0..len`, in lexicographic order.
fn k_subsets(len: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut combo: Vec<usize> = (0..k).collect();
    loop {
        out.push(combo.clone());
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if combo[i] != i + len - k {
                break;
            }
        }
        combo[i] += 1;
        for j in i + 1..k {
            combo[j] = combo[j - 1] + 1;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn make_succ(
    state: &GlobalState,
    site_ix: usize,
    to: StateId,
    consumed: &[MsgAddr],
    emit: &[crate::fsa::Envelope],
    site: SiteId,
    transition: u32,
    any_choice: Option<SiteId>,
) -> Result<Succ, ProtocolError> {
    let mut locals = state.locals.clone();
    locals[site_ix] = to;
    let mut msgs = state.msgs.clone();
    for &a in consumed {
        msgs.remove(a);
    }
    for e in emit {
        msgs.add(MsgAddr { src: site, dst: e.dst, kind: e.kind })?;
    }
    let succ = GlobalState { locals, msgs };
    Ok(Succ { state: succ, hash: 0, edge: Edge { to: 0, site, transition, any_choice } })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsa::{Envelope, FsaBuilder};
    use crate::protocol::Paradigm;
    use crate::protocols::{
        catalog, central_2pc, central_3pc, decentralized_2pc, decentralized_3pc,
    };

    #[test]
    fn msgs_multiset_semantics() {
        let a = MsgAddr { src: SiteId(0), dst: SiteId(1), kind: MsgKind::YES };
        let b = MsgAddr { src: SiteId(1), dst: SiteId(0), kind: MsgKind::NO };
        let mut m = Msgs::new();
        assert!(m.is_empty());
        m.add(a).unwrap();
        m.add(a).unwrap();
        m.add(b).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.count(a), 2);
        assert!(m.contains(b));
        m.remove(a);
        assert_eq!(m.count(a), 1);
        m.remove(a);
        assert!(!m.contains(a));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn msgs_equality_is_order_independent() {
        let a = MsgAddr { src: SiteId(0), dst: SiteId(1), kind: MsgKind::YES };
        let b = MsgAddr { src: SiteId(1), dst: SiteId(0), kind: MsgKind::NO };
        let m1 = Msgs::from_addrs([a, b]).unwrap();
        let m2 = Msgs::from_addrs([b, a]).unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn msgs_multiplicity_overflow_is_an_error_not_a_wrap() {
        // Regression: u16::MAX identical messages used to wrap to 0 on the
        // next add in release builds, silently emptying the address.
        let a = MsgAddr { src: SiteId(0), dst: SiteId(1), kind: MsgKind::YES };
        let mut m = Msgs::new();
        for _ in 0..u16::MAX {
            m.add(a).unwrap();
        }
        assert_eq!(m.count(a), u16::MAX);
        let err = m.add(a).unwrap_err();
        assert_eq!(
            err,
            ProtocolError::MsgOverflow { src: SiteId(0), dst: SiteId(1), kind: MsgKind::YES }
        );
        // The failed add must leave the multiset untouched.
        assert_eq!(m.count(a), u16::MAX);
    }

    #[test]
    #[should_panic]
    fn removing_absent_message_panics() {
        let a = MsgAddr { src: SiteId(0), dst: SiteId(1), kind: MsgKind::YES };
        Msgs::new().remove(a);
    }

    #[test]
    fn duplicate_address_all_trigger_respects_multiplicity() {
        // Regression: a `Consume::All` listing the same (src, kind) twice
        // used to pass the containment guard with a single outstanding copy
        // and then panic inside `Msgs::remove`. With the multiplicity-aware
        // guard, one copy must NOT enable the transition...
        let build = |copies: usize| {
            let mut coord = FsaBuilder::new("coordinator");
            let q = coord.state("q", StateClass::Initial);
            let c = coord.state("c", StateClass::Committed);
            let a = coord.state("a", StateClass::Aborted);
            coord.transition(
                q,
                c,
                Consume::All(vec![(SiteId(1), MsgKind::YES), (SiteId(1), MsgKind::YES)]),
                vec![Envelope::new(SiteId(1), MsgKind::COMMIT)],
                None,
                "yes yes / commit",
            );
            coord.transition(q, a, Consume::Spontaneous, vec![], None, "(no)");
            let mut slave = FsaBuilder::new("slave");
            let q2 = slave.state("q", StateClass::Initial);
            let c2 = slave.state("c", StateClass::Committed);
            slave.transition(
                q2,
                c2,
                Consume::one(SiteId(0), MsgKind::COMMIT),
                vec![],
                None,
                "commit /",
            );
            let inits = (0..copies)
                .map(|_| crate::protocol::InitialMsg {
                    src: SiteId(1),
                    dst: SiteId(0),
                    kind: MsgKind::YES,
                })
                .collect();
            Protocol::new(
                "dup-trigger",
                Paradigm::Custom,
                vec![coord.build(), slave.build()],
                inits,
            )
        };

        let g1 = ReachGraph::build(&build(1)).unwrap();
        // Only the spontaneous abort is enabled from the initial state.
        assert_eq!(g1.edges(g1.initial()).len(), 1);

        // ...while two copies enable it and both are consumed.
        let g2 = ReachGraph::build(&build(2)).unwrap();
        let fired: Vec<_> = g2.edges(g2.initial()).to_vec();
        assert_eq!(fired.len(), 2, "commit transition and spontaneous abort");
        let commit_edge = fired.iter().find(|e| e.transition == 0).unwrap();
        assert!(g2.node(commit_edge.to).msgs.contains(MsgAddr {
            src: SiteId(0),
            dst: SiteId(1),
            kind: MsgKind::COMMIT
        }));
        assert!(!g2.node(commit_edge.to).msgs.contains(MsgAddr {
            src: SiteId(1),
            dst: SiteId(0),
            kind: MsgKind::YES
        }));
    }

    #[test]
    fn two_site_2pc_graph_is_consistent_and_live() {
        // Paper figure: "Reachable state graph for the 2-site 2PC protocol".
        let p = central_2pc(2);
        let g = ReachGraph::build(&p).unwrap();
        let st = g.stats();
        assert!(st.nodes > 5, "nontrivial graph, got {}", st.nodes);
        assert_eq!(st.inconsistent_states, 0, "2PC preserves atomicity without failures");
        assert_eq!(st.deadlocked_states, 0, "no deadlock without failures");
        assert!(st.final_states >= 2, "both outcomes reachable");
    }

    #[test]
    fn all_catalog_graphs_are_consistent() {
        for n in 2..=3 {
            for p in crate::protocols::catalog(n) {
                let g = ReachGraph::build(&p).unwrap();
                let st = g.stats();
                assert_eq!(st.inconsistent_states, 0, "{}", p.name);
                assert_eq!(st.deadlocked_states, 0, "{}", p.name);
            }
        }
    }

    #[test]
    fn both_outcomes_reachable_everywhere() {
        for p in [central_2pc(3), central_3pc(3), decentralized_2pc(3), decentralized_3pc(3)] {
            let g = ReachGraph::build(&p).unwrap();
            let mut commit_reachable = false;
            let mut abort_reachable = false;
            for id in 0..g.node_count() as NodeId {
                if g.is_final(id) {
                    let all_commit =
                        g.node(id).locals.iter().enumerate().all(|(i, &s)| {
                            g.class_of(SiteId(i as u32), s) == StateClass::Committed
                        });
                    if all_commit {
                        commit_reachable = true;
                    } else {
                        abort_reachable = true;
                    }
                }
            }
            assert!(commit_reachable && abort_reachable, "{}", p.name);
        }
    }

    #[test]
    fn terminal_states_have_all_final_locals() {
        for p in crate::protocols::catalog(3) {
            let g = ReachGraph::build(&p).unwrap();
            for id in 0..g.node_count() as NodeId {
                if g.is_terminal(id) {
                    assert!(g.is_final(id), "{}: node {id} terminal but not final", p.name);
                }
            }
        }
    }

    #[test]
    fn graph_limit_enforced() {
        let p = central_3pc(3);
        for threads in [1, 2, 4] {
            let opts = ReachOptions { max_states: 4, threads, ..ReachOptions::default() };
            let err = ReachGraph::build_with(&p, opts);
            assert!(matches!(err, Err(ProtocolError::GraphTooLarge { limit: 4 })));
        }
    }

    #[test]
    fn three_pc_graph_larger_than_two_pc() {
        // The buffer state adds a phase, so the graph must grow.
        let g2 = ReachGraph::build(&central_2pc(3)).unwrap();
        let g3 = ReachGraph::build(&central_3pc(3)).unwrap();
        assert!(g3.node_count() > g2.node_count());
    }

    #[test]
    fn edges_record_firing_site() {
        let p = central_2pc(2);
        let g = ReachGraph::build(&p).unwrap();
        // The initial state's only enabled transition is the coordinator's
        // request consumption... plus nothing else (slaves have no input yet).
        let init_edges = g.edges(g.initial());
        assert_eq!(init_edges.len(), 1);
        assert_eq!(init_edges[0].site, SiteId(0));
    }

    /// Node-for-node, edge-for-edge equality of two graphs.
    fn assert_identical(a: &ReachGraph, b: &ReachGraph, context: &str) {
        assert_eq!(a.node_count(), b.node_count(), "{context}: node counts differ");
        assert_eq!(a.initial(), b.initial(), "{context}: initial ids differ");
        for id in 0..a.node_count() as NodeId {
            assert_eq!(a.node(id), b.node(id), "{context}: node {id} differs");
            assert_eq!(a.edges(id), b.edges(id), "{context}: edges of {id} differ");
        }
        assert_eq!(a.stats(), b.stats(), "{context}: classification differs");
    }

    #[test]
    fn parallel_graph_is_bit_identical_to_serial() {
        // Every catalog protocol, thread counts 1/2/4, with the inline
        // threshold forced to 1 so the parallel machinery actually runs on
        // these small graphs.
        for n in [2usize, 4] {
            for p in catalog(n) {
                let serial = ReachGraph::build_serial(&p, ReachOptions::default()).unwrap();
                for threads in [1usize, 2, 4] {
                    let opts = ReachOptions {
                        threads,
                        parallel_frontier_min: 1,
                        ..ReachOptions::default()
                    };
                    let par = ReachGraph::build_with(&p, opts).unwrap();
                    assert_identical(&serial, &par, &format!("{} threads={threads}", p.name));
                }
            }
        }
    }

    /// Counts folds — the simplest possible [`StateFolder`], used to pin
    /// the "every distinct state is folded exactly once" invariant that
    /// the fused analysis relies on.
    struct CountFolder(usize);

    impl StateFolder for CountFolder {
        fn fold(&mut self, _: &GlobalState) {
            self.0 += 1;
        }
        fn split(&self) -> Self {
            CountFolder(0)
        }
        fn absorb(&mut self, other: Self) {
            self.0 += other.0;
        }
    }

    #[test]
    fn folders_visit_every_distinct_state_exactly_once() {
        for p in catalog(3) {
            let expect =
                ReachGraph::build_serial(&p, ReachOptions::default()).unwrap().node_count();
            for threads in [1usize, 2, 4] {
                let opts =
                    ReachOptions { threads, parallel_frontier_min: 1, ..ReachOptions::default() };
                let mut c = CountFolder(0);
                let g = ReachGraph::build_with_folder(&p, opts, &mut c).unwrap();
                assert_eq!(g.node_count(), expect, "{} retained threads={threads}", p.name);
                assert_eq!(c.0, expect, "{} retained folds threads={threads}", p.name);

                let mut c = CountFolder(0);
                let st = fold_reachable(&p, opts, &mut c).unwrap();
                assert_eq!(st.distinct_states, expect, "{} stream count threads={threads}", p.name);
                assert_eq!(c.0, expect, "{} stream folds threads={threads}", p.name);
                assert!(st.levels > 1 && st.peak_resident >= 1, "{}", p.name);
            }
        }
    }

    #[test]
    fn progress_snapshots_identical_across_all_build_paths() {
        use std::sync::Mutex;
        type Snap = (usize, usize, usize, u64, usize);
        static SNAPS: Mutex<Vec<Snap>> = Mutex::new(Vec::new());
        fn hook(p: &LevelProgress) {
            SNAPS.lock().unwrap().push((p.level, p.frontier, p.new_states, p.dedup_hits, p.total));
        }
        let take = || std::mem::take(&mut *SNAPS.lock().unwrap());

        let p = central_3pc(3);
        let serial =
            ReachGraph::build_serial(&p, ReachOptions::default().with_progress(hook)).unwrap();
        let reference = take();
        assert!(reference.len() > 2, "expected several levels, got {reference:?}");
        for (i, s) in reference.iter().enumerate() {
            assert_eq!(s.0, i, "levels are numbered consecutively");
        }
        assert_eq!(reference.last().unwrap().4, serial.node_count());
        assert_eq!(reference.last().unwrap().2, 0, "final level discovers nothing");

        for threads in [2usize, 4] {
            let opts = ReachOptions { threads, parallel_frontier_min: 1, ..Default::default() }
                .with_progress(hook);
            let par = ReachGraph::build_with(&p, opts).unwrap();
            assert_eq!(par.node_count(), serial.node_count());
            assert_eq!(take(), reference, "parallel threads={threads}");

            let st = fold_reachable(&p, opts, &mut NoFolder).unwrap();
            assert_eq!(st.distinct_states, serial.node_count());
            assert_eq!(take(), reference, "streaming threads={threads}");
        }
    }

    #[test]
    fn streaming_spill_path_is_byte_identical_to_unlimited() {
        use crate::extmem::SpillStats;
        use std::sync::Mutex;
        type Snap = (usize, usize, usize, u64, usize);
        static SNAPS: Mutex<Vec<Snap>> = Mutex::new(Vec::new());
        fn hook(p: &LevelProgress) {
            SNAPS.lock().unwrap().push((p.level, p.frontier, p.new_states, p.dedup_hits, p.total));
        }
        let take = || std::mem::take(&mut *SNAPS.lock().unwrap());

        let p = central_3pc(3);
        for threads in [1usize, 2, 4] {
            // The unlimited reference at the same thread count —
            // `peak_resident` counts the pre-merge successor stream, whose
            // cross-chunk duplicates depend on the chunking, so the
            // byte-identity claim is budget-vs-no-budget, per thread count.
            let base = ReachOptions { threads, parallel_frontier_min: 1, ..Default::default() }
                .with_progress(hook);
            let unlimited = fold_reachable(&p, base, &mut NoFolder).unwrap();
            let reference = take();
            assert_eq!(unlimited.spill, SpillStats::default(), "no budget, no spill");

            // A 1-byte budget drains the hot fingerprint set at every
            // level boundary — many spill rounds and (with more levels
            // than MAX_RUNS) at least one compaction.
            let opts = ReachOptions { mem_budget: 1, ..base };
            let mut c = CountFolder(0);
            let st = fold_reachable(&p, opts, &mut c).unwrap();
            assert!(st.spill.runs_written >= 2, "budget of 1 byte must force repeated spilling");
            assert!(st.spill.bytes_written > 0);
            assert_eq!(c.0, unlimited.distinct_states, "folds diverged threads={threads}");
            assert_eq!(take(), reference, "progress diverged threads={threads}");
            assert_eq!(
                StreamStats { spill: SpillStats::default(), ..st },
                unlimited,
                "stats diverged threads={threads}"
            );
        }
    }

    #[test]
    fn streaming_limit_enforced() {
        let p = central_3pc(3);
        for threads in [1, 2, 4] {
            let opts = ReachOptions {
                max_states: 4,
                threads,
                parallel_frontier_min: 1,
                ..ReachOptions::default()
            };
            let err = fold_reachable(&p, opts, &mut NoFolder);
            assert!(matches!(err, Err(ProtocolError::GraphTooLarge { limit: 4 })));
        }
    }

    #[test]
    fn default_options_match_serial() {
        // The auto-threaded default path (whatever this machine resolves it
        // to) must agree with the reference implementation too.
        let p = central_3pc(4);
        let serial = ReachGraph::build_serial(&p, ReachOptions::default()).unwrap();
        let auto = ReachGraph::build(&p).unwrap();
        assert_identical(&serial, &auto, "central 3PC n=4 auto");
    }
}
