//! The k-resiliency corollary.
//!
//! Paper (§"A corollary to the fundamental nonblocking theorem"): *a commit
//! protocol is nonblocking with respect to k−1 site failures
//! (2 ≤ k ≤ n) if and only if there is a subset of k sites that obeys both
//! conditions of the fundamental nonblocking theorem.* A protocol with k
//! such sites will be nonblocking as long as one of them remains
//! operational.

use crate::analysis::Analysis;
use crate::error::ProtocolError;
use crate::protocol::Protocol;
use crate::theorem::{check_with, TheoremReport};

/// Resiliency analysis of one protocol.
#[derive(Clone, Debug)]
pub struct ResilienceReport {
    /// Protocol name.
    pub protocol: String,
    /// Number of participating sites.
    pub n_sites: usize,
    /// Per-site: does the site obey both theorem conditions?
    pub clean: Vec<bool>,
    /// The largest number of site failures the protocol is nonblocking
    /// with respect to: `max(0, #clean − 1)` bounded to `n−1`.
    pub max_tolerated_failures: usize,
}

impl ResilienceReport {
    /// Number of sites that obey both theorem conditions.
    pub fn clean_count(&self) -> usize {
        self.clean.iter().filter(|&&c| c).count()
    }

    /// Is the protocol nonblocking with respect to `f` site failures?
    ///
    /// By the corollary this requires a clean subset of size `f + 1`,
    /// i.e. at least `f + 1` clean sites.
    pub fn tolerates(&self, f: usize) -> bool {
        f == 0 || self.clean_count() > f
    }
}

/// Run the corollary against a protocol.
pub fn resilience(protocol: &Protocol) -> Result<ResilienceReport, ProtocolError> {
    let analysis = Analysis::build(protocol)?;
    Ok(resilience_with(protocol, &check_with(protocol, &analysis)))
}

/// Derive the resiliency report from an existing theorem report.
pub fn resilience_with(protocol: &Protocol, report: &TheoremReport) -> ResilienceReport {
    let clean = report.clean.clone();
    let clean_count = clean.iter().filter(|&&c| c).count();
    let n = protocol.n_sites();
    // Both arms saturate: a 0-site protocol (legal input — `Protocol::new`
    // does not require sites) tolerates no failures rather than panicking
    // on `n - 1`.
    let max_tolerated_failures = clean_count.saturating_sub(1).min(n.saturating_sub(1));
    ResilienceReport { protocol: protocol.name.clone(), n_sites: n, clean, max_tolerated_failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};

    #[test]
    fn three_pc_tolerates_all_but_one() {
        for n in 2..=4 {
            for p in [central_3pc(n), decentralized_3pc(n)] {
                let r = resilience(&p).unwrap();
                assert_eq!(r.max_tolerated_failures, n - 1, "{}", p.name);
                assert!(r.tolerates(n - 1));
            }
        }
    }

    #[test]
    fn central_2pc_tolerates_none() {
        // Only the coordinator is clean; a single clean site cannot form a
        // clean subset of size 2, so even one failure can block.
        let r = resilience(&central_2pc(3)).unwrap();
        assert_eq!(r.clean_count(), 1);
        assert_eq!(r.max_tolerated_failures, 0);
        assert!(r.tolerates(0));
        assert!(!r.tolerates(1));
    }

    #[test]
    fn decentralized_2pc_tolerates_none() {
        let r = resilience(&decentralized_2pc(4)).unwrap();
        assert_eq!(r.clean_count(), 0);
        assert_eq!(r.max_tolerated_failures, 0);
        assert!(!r.tolerates(1));
    }

    #[test]
    fn zero_failures_always_tolerated() {
        let r = resilience(&decentralized_2pc(2)).unwrap();
        assert!(r.tolerates(0));
    }

    #[test]
    fn zero_site_protocol_does_not_underflow() {
        // Regression: `min(n - 1)` underflowed for n = 0.
        let p = Protocol::new("empty", crate::Paradigm::Custom, vec![], vec![]);
        let report =
            TheoremReport { protocol: "empty".to_string(), violations: vec![], clean: vec![] };
        let r = resilience_with(&p, &report);
        assert_eq!(r.n_sites, 0);
        assert_eq!(r.max_tolerated_failures, 0);
        assert!(r.tolerates(0));
        assert!(!r.tolerates(1));
    }
}
