//! Observability integration: traced runs must be byte-reproducible, the
//! exported JSONL/Chrome artifacts must be well-formed, and the folded
//! metrics must satisfy the conservation invariants the event taxonomy
//! promises (sent = delivered + dropped; decisions match site outcomes).

use nbc_core::protocols::{catalog, central_2pc, central_3pc};
use nbc_core::{Analysis, ReachOptions};
use nbc_engine::{
    enumerate_crash_specs, run_traced, CrashPoint, CrashSpec, RunConfig, TerminationRule,
    TransitionProgress,
};
use nbc_obs::export::{to_chrome, to_jsonl};
use nbc_obs::{Event, EventKind, MemorySink, Metrics, SharedSink, Tracer};
use nbc_simnet::LatencyModel;

fn traced(
    p: &nbc_core::Protocol,
    a: &Analysis,
    cfg: RunConfig,
) -> (nbc_engine::RunReport, Vec<Event>) {
    let sink = SharedSink::new(MemorySink::default());
    let report = run_traced(p, a, cfg, Tracer::to_sink(sink.clone()));
    (report, sink.with(|s| s.events.clone()))
}

fn stress_config(n: usize) -> RunConfig {
    let mut cfg = RunConfig::happy(n);
    cfg.latency = LatencyModel::uniform(1, 15, 42);
    cfg.with_rule(TerminationRule::Cooperative).with_crash(CrashSpec {
        site: 0,
        point: CrashPoint::OnTransition { ordinal: 2, progress: TransitionProgress::AfterMsgs(1) },
        recover_at: Some(200),
    })
}

#[test]
fn jsonl_trace_is_byte_identical_across_repeats_and_analysis_threads() {
    let p = central_3pc(3);
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 4] {
        let opts = ReachOptions { threads, parallel_frontier_min: 1, ..Default::default() };
        let a = Analysis::build_with(&p, opts).unwrap();
        for _ in 0..2 {
            let (report, events) = traced(&p, &a, stress_config(3));
            assert!(report.consistent);
            let jsonl = to_jsonl(&events);
            assert!(!jsonl.is_empty());
            match &reference {
                None => reference = Some(jsonl),
                Some(r) => assert_eq!(&jsonl, r, "threads={threads}"),
            }
        }
    }
}

#[test]
fn exported_artifacts_are_well_formed() {
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let (_, events) = traced(&p, &a, stress_config(3));
    let jsonl = to_jsonl(&events);
    for line in jsonl.lines() {
        nbc_obs::json::validate(line).unwrap_or_else(|e| panic!("{e}: {line}"));
    }
    let chrome = to_chrome(&events);
    nbc_obs::json::validate(&chrome).unwrap();
    assert!(chrome.contains("\"ph\":\"X\""), "expected duration spans");
    assert!(chrome.contains("\"ph\":\"M\""), "expected track metadata");
}

#[test]
fn message_conservation_holds_at_quiescence() {
    // Across every protocol and every enumerated crash point: each message
    // the engine sends is eventually delivered or dropped — the engine
    // emits the deliver event even for down destinations, and the network
    // emits a drop for every partition casualty.
    for p in catalog(3) {
        let a = Analysis::build(&p).unwrap();
        let base = RunConfig::happy(3);
        for spec in enumerate_crash_specs(&p, Some(150)) {
            let mut cfg = base.clone();
            cfg.crashes = vec![spec];
            let sink = SharedSink::new(Metrics::default());
            let report = run_traced(&p, &a, cfg, Tracer::to_sink(sink.clone()));
            if report.truncated {
                continue;
            }
            let m = sink.with(|m| m.clone());
            assert_eq!(
                m.msgs_sent,
                m.msgs_delivered + m.msgs_dropped,
                "{} {spec:?}: sent {} != delivered {} + dropped {}",
                p.name,
                m.msgs_sent,
                m.msgs_delivered,
                m.msgs_dropped
            );
            assert_eq!(m.msgs_sent, report.msgs_sent, "{} {spec:?}", p.name);
        }
    }
}

#[test]
fn decision_events_match_site_outcomes() {
    // Every traced decision belongs to a site whose audited outcome shows
    // exactly that decision — for the nonblocking protocol and for the
    // blocking one under its cooperative termination rule.
    for (p, rule) in
        [(central_3pc(3), TerminationRule::Skeen), (central_2pc(3), TerminationRule::Cooperative)]
    {
        let a = Analysis::build(&p).unwrap();
        for spec in enumerate_crash_specs(&p, None) {
            let cfg = RunConfig::happy(3).with_rule(rule).with_crash(spec);
            let (report, events) = traced(&p, &a, cfg);
            for e in &events {
                if let EventKind::Decision { commit } = e.kind {
                    let site = e.site.expect("decisions are sited") as usize;
                    assert_eq!(
                        report.outcomes[site].decision(),
                        Some(commit),
                        "{} {spec:?}: site{site} traced decision disagrees with outcome {:?}",
                        p.name,
                        report.outcomes[site]
                    );
                }
            }
        }
    }
}

#[test]
fn stable_write_accounting_matches_wal_events() {
    // Gray–Lamport accounting: every physical fsync the engine performs is
    // both a WalFsync event and a per-txn stable write; byte totals agree.
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let sink = SharedSink::new(Metrics::default());
    let mem = SharedSink::new(MemorySink::default());
    let mut tracer = Tracer::to_sink(sink.clone());
    tracer.attach(mem.clone());
    let report = run_traced(&p, &a, RunConfig::happy(3), tracer);
    assert_eq!(report.decision(), Some(true));
    let m = sink.with(|m| m.clone());
    let events = mem.with(|s| s.events.clone());
    let fsyncs =
        events.iter().filter(|e| matches!(e.kind, EventKind::WalFsync { physical: true })).count()
            as u64;
    assert_eq!(m.wal_fsyncs_physical, fsyncs);
    let stable: u64 = m.txns.values().map(|t| t.stable_writes).sum();
    assert_eq!(stable, fsyncs, "every physical force is a per-txn stable write");
    let bytes: u64 = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::WalAppend { bytes, .. } => Some(*bytes),
            _ => None,
        })
        .sum();
    assert_eq!(m.wal_bytes, bytes);
    assert!(m.wal_appends > 0 && m.wal_bytes > 0);
}

#[test]
fn chrome_trace_tracks_are_well_formed() {
    // The Chrome export of a real crashy run must parse as JSON, and on
    // every (pid, tid) track the state-residency spans must tile the
    // timeline: starting at t=0, non-overlapping, each span beginning
    // where the previous one ended.
    use std::collections::BTreeMap;
    let p = central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let (_, events) = traced(&p, &a, stress_config(3));
    let chrome = to_chrome(&events);
    let doc = nbc_obs::json::parse(&chrome).unwrap();
    let records = match doc.get("traceEvents") {
        Some(nbc_obs::json::Value::Arr(items)) => items,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    assert!(!records.is_empty());
    let mut spans: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    let mut tracks_named: Vec<(u64, u64)> = Vec::new();
    for r in records {
        let ph = r.get("ph").and_then(|v| v.as_str()).expect("every record has ph");
        assert!(r.get("name").is_some(), "every record is named");
        let pid = r.get("pid").and_then(|v| v.as_u64()).expect("pid");
        let tid = r.get("tid").and_then(|v| v.as_u64()).expect("tid");
        match ph {
            "X" => {
                let ts = r.get("ts").and_then(|v| v.as_u64()).expect("ts");
                let dur = r.get("dur").and_then(|v| v.as_u64()).expect("dur");
                spans.entry((pid, tid)).or_default().push((ts, dur));
            }
            "i" => {
                assert!(r.get("ts").is_some());
            }
            "M" => {
                if r.get("name").and_then(|v| v.as_str()) == Some("thread_name") {
                    tracks_named.push((pid, tid));
                }
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(!spans.is_empty(), "a run with transitions must produce spans");
    for (track, mut sp) in spans {
        sp.sort_unstable();
        assert_eq!(sp[0].0, 0, "{track:?}: first residency starts at t=0");
        for w in sp.windows(2) {
            let ((ts, dur), (next_ts, _)) = (w[0], w[1]);
            assert_eq!(ts + dur, next_ts, "{track:?}: spans must tile without gap or overlap");
        }
        assert!(tracks_named.contains(&track), "{track:?}: every span track is named");
    }
}

#[test]
fn jsonl_export_round_trips_through_the_parser() {
    // analyze::parse_jsonl is the exact inverse of export::to_jsonl on
    // real engine traces: parse(export(events)) == events, for every
    // catalog protocol under a crashy, lossy configuration.
    for p in catalog(3) {
        let a = Analysis::build(&p).unwrap();
        let (_, events) = traced(&p, &a, stress_config(3));
        let jsonl = to_jsonl(&events);
        let parsed =
            nbc_obs::analyze::parse_jsonl(&jsonl).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        assert_eq!(parsed, events, "{}", p.name);
        // And re-export is byte-identical: no information is lost.
        assert_eq!(to_jsonl(&parsed), jsonl, "{}", p.name);
    }
}

#[test]
fn traced_event_names_stay_within_the_taxonomy() {
    // Every name the engine emits is one the offline parser recognizes —
    // a new event kind that misses analyze::parse_event would silently
    // vanish from trace verification.
    let known: &[&str] = &[
        "transition",
        "vote",
        "msg-send",
        "msg-deliver",
        "msg-drop",
        "decision",
        "crash",
        "recover",
        "failure-notice",
        "recovery-notice",
        "election",
        "aligned",
        "blocked",
        "wal-append",
        "wal-fsync",
        "wal-compact",
        "admit",
        "park",
        "die",
        "reap",
        "partition",
        "snapshot",
        "note",
    ];
    let mut seen = std::collections::BTreeSet::new();
    for p in catalog(3) {
        let a = Analysis::build(&p).unwrap();
        let (_, events) = traced(&p, &a, stress_config(3));
        for e in &events {
            assert!(known.contains(&e.kind.name()), "unknown event name {:?}", e.kind.name());
            seen.insert(e.kind.name());
        }
    }
    // The crashy run must exercise the load-bearing core of the taxonomy.
    for must in ["transition", "msg-send", "msg-deliver", "decision", "wal-append", "crash"] {
        assert!(seen.contains(must), "stress runs never emitted {must:?}");
    }
}
