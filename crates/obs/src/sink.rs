//! Sinks and the tracer handle.
//!
//! A [`Tracer`] is the cheap, cloneable handle instrumented code holds.
//! Disabled, it is a `None` — [`Tracer::emit`] is one branch and the event
//! closure never runs. Enabled, it fans each event out to every attached
//! [`Sink`] in attachment order.

use std::sync::{Arc, Mutex};

use crate::event::{Event, EventKind};

/// A consumer of traced events.
pub trait Sink {
    /// Record one event. Called in emission order.
    fn record(&mut self, event: &Event);
}

/// A sink that buffers every event in memory (the usual collection point
/// before exporting with [`crate::export`]).
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    /// The recorded events, in emission order.
    pub events: Vec<Event>,
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// A shared, cloneable wrapper around a sink: instrumented code holds one
/// clone (inside a [`Tracer`]), the caller keeps another to read results
/// after the run.
#[derive(Debug, Default)]
pub struct SharedSink<S>(Arc<Mutex<S>>);

impl<S> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<S> SharedSink<S> {
    /// Wrap a sink for sharing.
    pub fn new(sink: S) -> Self {
        Self(Arc::new(Mutex::new(sink)))
    }

    /// Run `f` with exclusive access to the inner sink (for reading the
    /// collected data back out).
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.0.lock().expect("sink mutex poisoned"))
    }
}

impl<S: Sink> Sink for SharedSink<S> {
    fn record(&mut self, event: &Event) {
        self.0.lock().expect("sink mutex poisoned").record(event);
    }
}

/// The sinks behind an enabled tracer, shared across clones.
type SinkList = Arc<Mutex<Vec<Box<dyn Sink + Send>>>>;

/// The tracer handle: `None` when tracing is off (the zero-overhead
/// default), or a shared list of sinks.
#[derive(Clone, Default)]
pub struct Tracer(Option<SinkList>);

impl Tracer {
    /// A disabled tracer: [`Tracer::emit`] is a no-op branch.
    pub fn off() -> Self {
        Self(None)
    }

    /// A tracer feeding one sink.
    pub fn to_sink(sink: impl Sink + Send + 'static) -> Self {
        let mut t = Self::off();
        t.attach(sink);
        t
    }

    /// Attach another sink (enabling the tracer if it was off). Sinks see
    /// events in attachment order.
    pub fn attach(&mut self, sink: impl Sink + Send + 'static) {
        let sinks = self.0.get_or_insert_with(|| Arc::new(Mutex::new(Vec::new())));
        sinks.lock().expect("tracer mutex poisoned").push(Box::new(sink));
    }

    /// True if at least one sink is attached. Call sites use this to skip
    /// preparatory work; [`Tracer::emit`] re-checks internally.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emit an event. The closure only runs — and the event is only
    /// constructed — when a sink is attached.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> Event) {
        if let Some(sinks) = &self.0 {
            let event = build();
            let mut guard = sinks.lock().expect("tracer mutex poisoned");
            for sink in guard.iter_mut() {
                sink.record(&event);
            }
        }
    }
}

/// Renders the subset of events that made up the engine's original
/// human-readable trace into exactly those legacy lines (`t=...` prefixed),
/// so `RunReport::trace` keeps its historical byte-for-byte format while
/// being routed through the sink layer.
#[derive(Clone, Debug, Default)]
pub struct LinesSink {
    /// The rendered lines, in emission order.
    pub lines: Vec<String>,
}

impl Sink for LinesSink {
    fn record(&mut self, event: &Event) {
        let t = event.time;
        let site = event.site.unwrap_or(0);
        match &event.kind {
            EventKind::Transition { from, to } => {
                self.lines.push(format!("t={t:<4} site{site}: {from} -> {to} (logged)"));
            }
            EventKind::MsgSend { dst, label } => {
                self.lines.push(format!("t={t:<4} site{site} -> site{dst} : {label}"));
            }
            EventKind::Decision { commit } => {
                let verdict = if *commit { "COMMIT" } else { "ABORT" };
                self.lines.push(format!("t={t:<4} site{site}: DECIDED {verdict}"));
            }
            EventKind::Crash => self.lines.push(format!("t={t:<4} site{site}: CRASH")),
            EventKind::Recover => self.lines.push(format!("t={t:<4} site{site}: RECOVER")),
            EventKind::Partition { groups } => {
                self.lines.push(format!("t={t:<4} PARTITION {groups}"));
            }
            EventKind::Note { text } => self.lines.push(format!("t={t:<4} {text}")),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_never_builds_events() {
        let t = Tracer::off();
        assert!(!t.enabled());
        t.emit(|| unreachable!("disabled tracer must not build events"));
    }

    #[test]
    fn events_fan_out_to_all_sinks() {
        let a = SharedSink::new(MemorySink::default());
        let b = SharedSink::new(MemorySink::default());
        let mut t = Tracer::to_sink(a.clone());
        t.attach(b.clone());
        assert!(t.enabled());
        t.emit(|| Event::new(1, EventKind::Crash).at_site(0));
        t.emit(|| Event::new(2, EventKind::Recover).at_site(0));
        assert_eq!(a.with(|s| s.events.len()), 2);
        assert_eq!(b.with(|s| s.events.len()), 2);
        assert_eq!(a.with(|s| s.events[1].kind.name()), "recover");
    }

    #[test]
    fn lines_sink_renders_legacy_format() {
        let mut s = LinesSink::default();
        s.record(
            &Event::new(5, EventKind::Transition { from: "q1".into(), to: "w1".into() }).at_site(1),
        );
        s.record(&Event::new(5, EventKind::MsgSend { dst: 2, label: "yes".into() }).at_site(1));
        s.record(&Event::new(12345, EventKind::Decision { commit: true }).at_site(0));
        s.record(&Event::new(7, EventKind::Vote { yes: true }).at_site(1)); // not rendered
        assert_eq!(
            s.lines,
            vec![
                "t=5    site1: q1 -> w1 (logged)",
                "t=5    site1 -> site2 : yes",
                "t=12345 site0: DECIDED COMMIT",
            ]
        );
    }
}
