//! Quantitative shape experiments B1–B4: blocking probability, message
//! complexity, phase latency, and throughput under failures.

use nbc_core::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};
use nbc_core::{Analysis, Protocol};
use nbc_engine::{
    enumerate_crash_specs, run_with, sweep, CrashPoint, CrashSpec, RunConfig, TerminationRule,
    TransitionProgress,
};
use nbc_simnet::SimRng;
use nbc_txn::{BankWorkload, Cluster, ClusterConfig, ProtocolKind, TxnResult};

use crate::table::Table;

fn rule_for(p: &Protocol) -> TerminationRule {
    if p.phase_count() >= 3 {
        TerminationRule::Skeen
    } else {
        TerminationRule::Cooperative
    }
}

/// B1 — blocking probability over the exhaustive crash-point space, per
/// protocol and site count. Shape: 2PC has a nonzero blocking window that
/// persists as n grows; 3PC is zero everywhere.
///
/// The per-(protocol, n) sweeps are independent, so they run on scoped
/// threads.
pub fn b1_blocking_probability() -> String {
    let mut jobs: Vec<Protocol> = Vec::new();
    for n in [3usize, 5, 7] {
        jobs.push(central_2pc(n));
        jobs.push(central_3pc(n));
    }
    for n in [3usize, 4] {
        jobs.push(decentralized_2pc(n));
        jobs.push(decentralized_3pc(n));
    }

    let rows: Vec<[String; 5]> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|p| {
                scope.spawn(move || {
                    let n = p.n_sites();
                    let a = Analysis::build(p).expect("analyzable");
                    let specs = enumerate_crash_specs(p, None);
                    let base = RunConfig::happy(n).with_rule(rule_for(p));
                    let s = sweep(p, &a, &base, &specs);
                    assert!(s.all_consistent(), "{}: {:?}", p.name, s.inconsistent_runs);
                    [
                        p.name.clone(),
                        n.to_string(),
                        s.total.to_string(),
                        s.blocked.to_string(),
                        format!("{:.3}", s.blocking_rate()),
                    ]
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep thread")).collect()
    });

    let mut t =
        Table::new(["protocol", "n", "crash points", "blocked runs", "blocking probability"]);
    for row in rows {
        t.row(row);
    }
    format!(
        "{}\nShape: every 2PC row has blocking probability > 0 (the window \
         where the coordinator dies holding the only copy of the decision); \
         every 3PC row is exactly 0.\n",
        t.render()
    )
}

/// B2 — messages per committed transaction. Shape: central 2PC = 3(n−1),
/// central 3PC = 5(n−1); decentralized 2PC = n², decentralized 3PC = 2n².
pub fn b2_message_complexity() -> String {
    let mut t = Table::new(["protocol", "n", "messages (measured)", "formula", "predicted"]);
    let push = |t: &mut Table, p: Protocol, n: usize, formula: &str, predicted: usize| {
        let a = Analysis::build(&p).expect("analyzable");
        let r = run_with(&p, &a, RunConfig::happy(n));
        assert_eq!(r.decision(), Some(true));
        t.row([
            p.name.clone(),
            n.to_string(),
            r.msgs_sent.to_string(),
            formula.to_string(),
            predicted.to_string(),
        ]);
    };
    for n in [2usize, 3, 5, 8] {
        push(&mut t, central_2pc(n), n, "3(n-1)", 3 * (n - 1));
        push(&mut t, central_3pc(n), n, "5(n-1)", 5 * (n - 1));
        // The decentralized analyses grow exponentially; n=5 already shows
        // the quadratic message shape.
        if n <= 5 {
            push(&mut t, decentralized_2pc(n), n, "n^2", n * n);
            push(&mut t, decentralized_3pc(n), n, "2n^2", 2 * n * n);
        }
    }
    format!(
        "{}\nShape: the buffer round costs 2(n−1) extra messages in the \
         central paradigm and n² in the decentralized one — the price of \
         nonblocking.\n",
        t.render()
    )
}

/// B3 — latency: protocol phases and end-to-end simulated time (constant
/// unit latency). Shape: 3PC adds exactly one phase (one round trip in the
/// central paradigm, one interchange in the decentralized one).
pub fn b3_latency() -> String {
    let mut t = Table::new(["protocol", "n", "phases", "sim time to all-final"]);
    for n in [3usize, 5] {
        for p in [central_2pc(n), central_3pc(n), decentralized_2pc(n), decentralized_3pc(n)] {
            let a = Analysis::build(&p).expect("analyzable");
            let r = run_with(&p, &a, RunConfig::happy(n));
            t.row([
                p.name.clone(),
                n.to_string(),
                p.phase_count().to_string(),
                r.finished_at.to_string(),
            ]);
        }
    }
    format!(
        "{}\nShape: with unit latency, commit latency grows by one message \
         round per added phase; decentralized protocols pay the same rounds \
         with quadratic bandwidth.\n",
        t.render()
    )
}

/// B4 — committed-transaction throughput under coordinator crashes, 2PC vs
/// 3PC over the bank workload. Shape: 3PC keeps terminating (no blocked
/// transactions, bounded abort rate); 2PC strands transactions whose locks
/// then poison later conflicting transactions.
pub fn b4_throughput_under_failures() -> String {
    let mut t = Table::new([
        "protocol",
        "crash rate",
        "txns",
        "committed",
        "aborted",
        "blocked",
        "goodput",
    ]);
    for kind in [ProtocolKind::Central2pc, ProtocolKind::Central3pc] {
        for crash_pct in [0u32, 10, 25, 50] {
            let mut rng = SimRng::seed_from_u64(2024);
            let w0 = BankWorkload::new(3, 12, 1_000, 31);
            let mut c = Cluster::new(ClusterConfig::new(3, kind));
            assert_eq!(c.execute(&w0.setup_ops()), TxnResult::Committed);
            let mut w = w0.clone();
            let total = 200u32;
            for _ in 0..total {
                let (f, to, amt) = w.random_transfer();
                let crashes = if rng.gen_ratio(crash_pct, 100) {
                    vec![CrashSpec {
                        site: 0,
                        point: CrashPoint::OnTransition {
                            ordinal: 2,
                            progress: TransitionProgress::AfterMsgs(rng.gen_range(0u32..=2)),
                        },
                        recover_at: None,
                    }]
                } else {
                    vec![]
                };
                let _ = c.transfer_with_crashes(&w, f, to, amt, &crashes);
            }
            let stats = c.stats.clone();
            t.row([
                kind.name().to_string(),
                format!("{crash_pct}%"),
                total.to_string(),
                (stats.committed - 1).to_string(), // minus the setup txn
                stats.aborted.to_string(),
                stats.blocked.to_string(),
                format!("{:.2}", (stats.committed - 1) as f64 / total as f64),
            ]);
            c.recover_all();
            assert_eq!(
                c.total_balance(&w),
                w.expected_total(),
                "{}: conservation after recovery",
                kind.name()
            );
        }
    }
    format!(
        "{}\nShape: at 0% both protocols commit everything; as the crash \
         rate rises, 2PC goodput collapses (blocked transactions hold locks \
         and poison successors) while 3PC degrades only by the transactions \
         aborted by the termination protocol itself.\n",
        t.render()
    )
}

/// B6 — concurrent commit pipeline vs the serial cluster: transactions
/// per kilotick at growing in-flight limits, with group-commit savings.
/// Shape: concurrency multiplies throughput for both protocols (rounds
/// overlap on the wire), but 2PC's blocked rounds strand locks until the
/// reaper fires, so its speedup saturates below 3PC's under crashes.
pub fn b6_pipeline_group_commit() -> String {
    use nbc_pipeline::{bank_transfer_txns, Pipeline, PipelineConfig, PipelineTxn};

    let mut t = Table::new([
        "protocol",
        "crash rate",
        "in-flight",
        "committed",
        "aborted",
        "blocked",
        "ticks",
        "txn/ktick",
        "speedup",
        "syncs saved",
    ]);
    let txns = 100usize;
    for kind in [ProtocolKind::Central2pc, ProtocolKind::Central3pc] {
        for crash_pct in [0u32, 25] {
            // Serial baseline: the pre-pipeline cluster, one round at a
            // time, a physical force per sync.
            let w = BankWorkload::new(3, 24, 1_000, 31);
            let batch = {
                let mut rng = SimRng::seed_from_u64(0xB6);
                bank_transfer_txns(&mut w.clone(), txns, crash_pct, &mut rng)
            };
            let mut serial = Cluster::new(ClusterConfig::new(3, kind));
            assert_eq!(serial.execute(&w.setup_ops()), TxnResult::Committed);
            {
                let mut rng = SimRng::seed_from_u64(0xB6);
                let mut wc = w.clone();
                for _ in 0..txns {
                    let (f, to, amt) = wc.random_transfer();
                    let crashes = if crash_pct > 0 && rng.gen_ratio(crash_pct, 100) {
                        vec![CrashSpec {
                            site: 0,
                            point: CrashPoint::OnTransition {
                                ordinal: 2,
                                progress: TransitionProgress::AfterMsgs(rng.gen_range(0u32..=2)),
                            },
                            recover_at: None,
                        }]
                    } else {
                        vec![]
                    };
                    let _ = serial.transfer_with_crashes(&wc, f, to, amt, &crashes);
                }
                serial.recover_all();
                assert_eq!(serial.total_balance(&wc), wc.expected_total());
            }
            let serial_ticks = serial.stats.sim_time.max(1);
            let serial_rate = txns as f64 * 1000.0 / serial_ticks as f64;
            t.row([
                kind.name().to_string(),
                format!("{crash_pct}%"),
                "serial".to_string(),
                (serial.stats.committed - 1).to_string(),
                serial.stats.aborted.to_string(),
                serial.stats.blocked.to_string(),
                serial_ticks.to_string(),
                format!("{serial_rate:.1}"),
                "1.00x".to_string(),
                "-".to_string(),
            ]);

            for in_flight in [4usize, 8] {
                let mut p = Pipeline::new(
                    PipelineConfig::new(3, kind)
                        .with_in_flight(in_flight)
                        .with_group_window(3)
                        .with_reap_after(60),
                );
                p.run(vec![PipelineTxn::from_ops(&w.setup_ops())]);
                let start = p.now();
                let r = p.run(batch.clone());
                assert_eq!(
                    p.total_balance(&w),
                    w.expected_total(),
                    "{}: pipeline conservation",
                    kind.name()
                );
                assert_eq!(p.locked_keys(), 0);
                let ticks = (r.finished_at - start).max(1);
                let rate = txns as f64 * 1000.0 / ticks as f64;
                let speedup = serial_ticks as f64 / ticks as f64;
                if in_flight == 8 {
                    assert!(
                        speedup >= 2.0,
                        "{} @ {crash_pct}%: pipeline must be >= 2x serial, got {speedup:.2}",
                        kind.name()
                    );
                    assert!(r.syncs_saved > 0, "group commit must save syncs");
                }
                t.row([
                    kind.name().to_string(),
                    format!("{crash_pct}%"),
                    in_flight.to_string(),
                    r.committed.to_string(),
                    r.aborted.to_string(),
                    r.blocked.to_string(),
                    ticks.to_string(),
                    format!("{rate:.1}"),
                    format!("{speedup:.2}x"),
                    r.syncs_saved.to_string(),
                ]);
            }
        }
    }
    format!(
        "{}\nShape: overlapping rounds multiply throughput and group commit \
         absorbs most log forces; under crashes 2PC pays twice — blocked \
         rounds finish only at the reap deadline (latency tail) and their \
         strand-locks abort younger transactions in the meantime.\n",
        t.render()
    )
}

/// B8 — Paxos Commit resilience: goodput and per-round cost vs the
/// acceptor-fault tolerance F under injected acceptor crashes, plus the
/// Gray–Lamport cost table. Shape: F=0 has a 1-of-1 quorum and blocks
/// like 2PC the moment its lone acceptor dies mid-relay; F>=1 absorbs one
/// crashed acceptor per round with goodput intact, paying a linear
/// message premium per extra acceptor pair.
pub fn b8_paxos_resilience() -> String {
    use nbc_paxos::{central_2pc_cost, central_3pc_cost, gl_2pc_cost, gl_paxos_cost, paxos_cost};

    let n = 3usize;
    let mut t = Table::new([
        "F",
        "acceptors",
        "crash rate",
        "txns",
        "committed",
        "aborted",
        "blocked",
        "goodput",
        "msgs/txn",
        "ticks/txn",
    ]);
    for f in [0usize, 1, 2] {
        let acceptors = 2 * f + 1;
        for crash_pct in [0u32, 25, 50] {
            let mut rng = SimRng::seed_from_u64(0xB8 + f as u64);
            let w0 = BankWorkload::new(n, 12, 1_000, 31);
            let mut c = Cluster::new(ClusterConfig::new(n, ProtocolKind::Paxos { f }));
            assert_eq!(c.execute(&w0.setup_ops()), TxnResult::Committed);
            let mut w = w0.clone();
            let total = 120u32;
            for _ in 0..total {
                let (from, to, amt) = w.random_transfer();
                let crashes = if rng.gen_ratio(crash_pct, 100) {
                    // One random acceptor dies before relaying its verdict
                    // to the leader — the crash the quorum exists to absorb.
                    vec![CrashSpec {
                        site: n + rng.gen_range(0..acceptors),
                        point: CrashPoint::OnTransition {
                            ordinal: 1,
                            progress: TransitionProgress::AfterMsgs(0),
                        },
                        recover_at: None,
                    }]
                } else {
                    vec![]
                };
                let _ = c.transfer_with_crashes(&w, from, to, amt, &crashes);
            }
            let stats = c.stats.clone();
            let rounds = (total + 1) as f64; // incl. the setup txn
            if f >= 1 {
                assert_eq!(
                    stats.blocked, 0,
                    "f={f} @ {crash_pct}%: a quorum must absorb one acceptor crash"
                );
            }
            t.row([
                f.to_string(),
                acceptors.to_string(),
                format!("{crash_pct}%"),
                total.to_string(),
                (stats.committed - 1).to_string(), // minus the setup txn
                stats.aborted.to_string(),
                stats.blocked.to_string(),
                format!("{:.2}", (stats.committed - 1) as f64 / total as f64),
                format!("{:.1}", stats.messages as f64 / rounds),
                format!("{:.1}", stats.sim_time as f64 / rounds),
            ]);
            c.recover_all();
            assert_eq!(
                c.total_balance(&w),
                w.expected_total(),
                "f={f} @ {crash_pct}%: conservation after recovery"
            );
        }
    }

    let mut cost = Table::new([
        "protocol",
        "msgs/txn",
        "stable writes",
        "delays",
        "GL msgs",
        "GL writes",
        "GL delays",
    ]);
    let gl = |r: nbc_paxos::CostRow| {
        [r.messages.to_string(), r.stable_writes.to_string(), r.delays.to_string()]
    };
    let mut push = |name: String, m: nbc_paxos::CostRow, g: Option<nbc_paxos::CostRow>| {
        let [gm, gw, gd] = g.map(gl).unwrap_or_else(|| ["-".into(), "-".into(), "-".into()]);
        cost.row([
            name,
            m.messages.to_string(),
            m.stable_writes.to_string(),
            m.delays.to_string(),
            gm,
            gw,
            gd,
        ]);
    };
    push("central-2pc".into(), central_2pc_cost(n), Some(gl_2pc_cost(n)));
    push("central-3pc".into(), central_3pc_cost(n), None);
    for f in [0usize, 1, 2] {
        push(format!("paxos-commit f={f}"), paxos_cost(n, f), Some(gl_paxos_cost(n, f)));
    }

    format!(
        "{}\nShape: at F=0 goodput collapses with the acceptor crash rate \
         exactly like 2PC under coordinator crashes (the stranded rounds \
         hold locks and poison successors); at F>=1 every round decides and \
         goodput stays near 1.0, bought with (n-1)+2 extra messages per \
         acceptor pair.\n\nCost per committed transaction at n={n} \
         (measured model vs Gray-Lamport analytic; GL colocate acceptors \
         with RMs, eliding the relay messages and the 3 log forces each \
         distinct acceptor site pays here):\n{}\n",
        t.render(),
        cost.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b2_formulas_hold() {
        let s = b2_message_complexity();
        for line in s.lines().filter(|l| l.contains("central-site")) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            // measured == predicted (last two numeric columns).
            let measured = cells[cells.len() - 3];
            let predicted = cells[cells.len() - 1];
            assert_eq!(measured, predicted, "{line}");
        }
    }

    #[test]
    fn b1_shapes() {
        let s = b1_blocking_probability();
        assert!(s.contains("0.000"), "3PC rows must be zero: {s}");
        // Some 2PC row must be nonzero.
        assert!(
            s.lines().any(|l| l.contains("2PC") && !l.contains("0.000") && l.contains("0.")),
            "{s}"
        );
    }
}
