//! # nbc-check — a schedule-exploring model checker for the engine
//!
//! `nbc-core` *predicts* how a commit protocol behaves (reachable state
//! graph, concurrency sets, the fundamental nonblocking theorem);
//! `nbc-engine` *executes* it. This crate drives the real engine
//! [`Runner`](nbc_engine::Runner) through **every** interleaving of
//! message delivery, message loss, site crash, site recovery and
//! imperfect-detector suspicion (including *false* suspicion of live
//! sites, and its revocation) within configurable budgets, and
//! cross-validates the two against each other with four oracles:
//!
//! 1. **consistency** — no execution mixes commit and abort;
//! 2. **prediction** — every local state a site operationally occupies is
//!    analytically reachable, and (at full depth, over all vote plans)
//!    every analytically reachable state is operationally witnessed;
//! 3. **nonblocking** — protocols the theorem certifies nonblocking never
//!    leave an operational site blocked within their resilience bound,
//!    while blocking protocols must yield a blocking witness;
//! 4. **recovery** — at every crash-recovery point the WAL replays
//!    cleanly into a position compatible with the already-taken decision.
//!
//! Witnesses and violations are shrunk to 1-minimal schedules and emitted
//! as replayable JSONL (see [`schedule`]) that `nbc simulate --schedule`
//! re-executes byte-for-byte. The whole pipeline is deterministic: the
//! same protocol and options produce the same report, byte for byte, *at
//! any thread count and any traversal seed* — the parallel sweep only
//! flags order-independent facts, concrete witnesses come from a serial
//! canonical-order search, and a `--max-states`-truncated plan is redone
//! by that same canonical traversal so even truncated counts are
//! schedule-independent (see [`explore`]). Setting a
//! [`mem_budget`](CheckOptions::mem_budget) spills the fingerprint store
//! to sorted disk runs without changing a byte of the report either.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod explore;
pub mod oracle;
pub mod schedule;
pub mod shrink;

use nbc_core::{
    resilience, theorem, Analysis, Protocol, ProtocolError, SiteId, SpillStats, StateId,
};
use nbc_engine::{Runner, TerminationRule};

pub use explore::{CheckOptions, CheckProgress, ExploreStats, CHECK_TXN};
pub use oracle::Oracles;
pub use schedule::{apply_step, replay_lenient, replay_strict, ReplayError, Schedule, Step};
pub use shrink::{drain, shrink};

/// The CLI name of a termination rule (shared vocabulary with `nbc run
/// --rule` and schedule headers).
pub fn rule_name(rule: TerminationRule) -> &'static str {
    match rule {
        TerminationRule::Skeen => "skeen",
        TerminationRule::NaiveCs => "naive",
        TerminationRule::Cooperative => "cooperative",
        TerminationRule::QuorumSkeen => "quorum",
    }
}

/// Parse a termination rule name (inverse of [`rule_name`]).
pub fn rule_from_name(name: &str) -> Option<TerminationRule> {
    match name {
        "skeen" => Some(TerminationRule::Skeen),
        "naive" => Some(TerminationRule::NaiveCs),
        "cooperative" => Some(TerminationRule::Cooperative),
        "quorum" => Some(TerminationRule::QuorumSkeen),
        _ => None,
    }
}

/// Re-execute a counterexample [`Schedule`] with a flight recorder
/// attached and return the recorder's JSONL dump — the causal event tail
/// that ships next to the counterexample file so `nbc trace` can
/// reconstruct what led up to the violation. Strict replay is attempted
/// first; a schedule that no longer applies step-for-step (shrinking can
/// leave conditionally applicable steps) is replayed leniently. After the
/// schedule, the run is drained to quiescence so the dump captures the
/// aftermath, not just the injected steps.
pub fn replay_flight_dump(
    protocol: &Protocol,
    sched: &Schedule,
    capacity: usize,
) -> Result<String, ProtocolError> {
    use nbc_obs::{FlightRecorder, SharedSink, Tracer};
    let analysis = Analysis::build(protocol)?;
    let rule = rule_from_name(&sched.rule).unwrap_or(TerminationRule::Cooperative);
    let replay_once = |strict: bool| {
        let rec = SharedSink::new(FlightRecorder::new(capacity));
        let cfg = explore::plan_config(sched.n, &sched.votes, rule);
        let mut runner =
            Runner::with_tracer(protocol, &analysis, cfg, Tracer::to_sink(rec.clone()));
        let ok = if strict {
            replay_strict(&mut runner, &sched.steps).is_ok()
        } else {
            replay_lenient(&mut runner, &sched.steps);
            true
        };
        let mut tail = Vec::new();
        drain(&mut runner, &mut tail);
        (ok, rec)
    };
    let (strict_ok, rec) = replay_once(true);
    let rec = if strict_ok { rec } else { replay_once(false).1 };
    Ok(rec.with(|r| r.dump_jsonl()))
}

/// One oracle failure, with its shrunk, strictly replayable counterexample.
#[derive(Debug)]
pub struct OracleFailure {
    /// Which oracle: `consistency`, `prediction`, `nonblocking`, `recovery`.
    pub oracle: &'static str,
    /// What went wrong.
    pub detail: String,
    /// Shrunk counterexample, when the failure has one (coverage-style
    /// failures like an unwitnessed slot do not).
    pub counterexample: Option<Schedule>,
}

/// The complete result of one check run.
pub struct CheckReport {
    /// Protocol name.
    pub protocol: String,
    /// Site count.
    pub n: usize,
    /// Options the check ran under.
    pub options: CheckOptions,
    /// Did the fundamental nonblocking theorem certify the protocol?
    pub certified_nonblocking: bool,
    /// The k-resiliency bound from the theorem's per-site conditions.
    pub max_tolerated_failures: usize,
    /// Was the fault budget within the certified resilience bound (and
    /// the network assumption unviolated)? Only then does the theorem
    /// promise no blocking. For quorum-based protocols this is instead
    /// the quorum's own bound: at most `f` acceptor crashes, no drops.
    pub within_resilience: bool,
    /// `Some(f)` for quorum-based protocols (2f+1 acceptors, nonblocking
    /// promised for up to `f` acceptor crashes); `None` otherwise.
    pub quorum_f: Option<usize>,
    /// Exploration counters.
    pub stats: ExploreStats,
    /// Analytic `(site, state)` slot names never operationally witnessed.
    /// Meaningful only for an untruncated all-plans exploration.
    pub unwitnessed: Vec<String>,
    /// Prediction completeness: exploration was exhaustive over all vote
    /// plans and every analytic slot was witnessed.
    pub prediction_complete: bool,
    /// Shrunk path to a quiescent state with a blocked operational site,
    /// if one exists. For a blocking protocol this is the *expected*
    /// theorem witness; for a certified protocol within resilience it is
    /// also listed under `failures`.
    pub blocking_witness: Option<Schedule>,
    /// All oracle failures (empty for a fully passing check).
    pub failures: Vec<OracleFailure>,
    /// External-memory activity of the fingerprint stores (all zero when
    /// no [`CheckOptions::mem_budget`] is set). Deliberately excluded
    /// from [`CheckReport::render`] and [`CheckReport::to_json`] so those
    /// stay byte-identical with and without a budget; the CLI reports it
    /// on stderr instead.
    pub spill: SpillStats,
}

impl CheckReport {
    /// Did every oracle pass?
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Deterministic human-readable report.
    pub fn render(&self) -> String {
        let o = &self.options;
        let mut out = String::new();
        out.push_str(&format!(
            "nbc-check: {} (n={}, rule={})\n",
            self.protocol,
            self.n,
            rule_name(o.rule)
        ));
        out.push_str(&format!(
            "  theorem: {} (tolerates {} simultaneous failure{})\n",
            if self.certified_nonblocking { "NONBLOCKING" } else { "BLOCKING" },
            self.max_tolerated_failures,
            if self.max_tolerated_failures == 1 { "" } else { "s" },
        ));
        if let Some(f) = self.quorum_f {
            out.push_str(&format!(
                "  quorum: f={f} ({} acceptors; nonblocking promised for <= {f} acceptor \
                 crash{})\n",
                2 * f + 1,
                if f == 1 { "" } else { "es" },
            ));
        }
        out.push_str(&format!(
            "  budgets: depth={} faults={} recoveries={} drops={} suspicions={} seed={}\n",
            o.depth,
            o.faults,
            o.recoveries,
            o.drops,
            o.suspicions,
            o.seed.map_or("none".to_string(), |s| s.to_string()),
        ));
        out.push_str(&format!(
            "  explored: {} vote plan{}, {} distinct states, {} actions ({} fused), {}\n",
            self.stats.plans,
            if self.stats.plans == 1 { "" } else { "s" },
            self.stats.distinct_states,
            self.stats.actions,
            self.stats.fused,
            if self.stats.truncated { "TRUNCATED" } else { "exhaustive" },
        ));
        let failed = |oracle: &str| self.failures.iter().any(|f| f.oracle == oracle);
        out.push_str(&format!(
            "  oracle consistency: {}\n",
            if failed("consistency") { "FAIL" } else { "PASS" }
        ));
        let prediction = if failed("prediction") {
            "FAIL".to_string()
        } else if self.prediction_complete {
            "PASS (sound and complete: every analytic state witnessed)".to_string()
        } else if !self.unwitnessed.is_empty() {
            format!("PASS (sound; {} analytic slots unwitnessed)", self.unwitnessed.len())
        } else {
            "PASS (sound)".to_string()
        };
        out.push_str(&format!("  oracle prediction: {prediction}\n"));
        let nonblocking = if failed("nonblocking") {
            "FAIL".to_string()
        } else if let Some(f) = self.quorum_f {
            if self.within_resilience {
                format!("PASS (no blocking with <= {f} acceptor crashes)")
            } else {
                match &self.blocking_witness {
                    Some(_) => "PASS (blocked beyond quorum resilience, as permitted)".to_string(),
                    None => "PASS (no blocking even beyond quorum resilience)".to_string(),
                }
            }
        } else if !self.certified_nonblocking {
            match &self.blocking_witness {
                Some(w) => format!("PASS (blocking confirmed; witness of {} steps)", w.steps.len()),
                None => "PASS (blocking; no witness within budgets)".to_string(),
            }
        } else if !self.within_resilience {
            match &self.blocking_witness {
                Some(_) => "PASS (blocked beyond resilience bound, as permitted)".to_string(),
                None => "PASS (no blocking even beyond resilience bound)".to_string(),
            }
        } else {
            "PASS (no operational site ever blocked)".to_string()
        };
        out.push_str(&format!("  oracle nonblocking: {nonblocking}\n"));
        out.push_str(&format!(
            "  oracle recovery: {}\n",
            if failed("recovery") { "FAIL" } else { "PASS" }
        ));
        for slot in &self.unwitnessed {
            out.push_str(&format!("  unwitnessed: {slot}\n"));
        }
        for f in &self.failures {
            out.push_str(&format!("  FAILURE [{}]: {}\n", f.oracle, f.detail));
        }
        if let Some(w) = &self.blocking_witness {
            out.push_str("  blocking witness (replayable with `nbc simulate --schedule`):\n");
            for line in w.to_jsonl().lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
        for f in &self.failures {
            if let Some(cx) = &f.counterexample {
                out.push_str(&format!("  counterexample [{}]:\n", f.oracle));
                for line in cx.to_jsonl().lines() {
                    out.push_str(&format!("    {line}\n"));
                }
            }
        }
        out.push_str(&format!("  verdict: {}\n", if self.ok() { "OK" } else { "FAIL" }));
        out
    }

    /// Deterministic single-line JSON summary (schedules reported by step
    /// count; the full JSONL goes to `--counterexample` files).
    pub fn to_json(&self) -> String {
        let o = &self.options;
        let failures: Vec<String> = self
            .failures
            .iter()
            .map(|f| {
                format!(
                    "{{\"oracle\":\"{}\",\"detail\":\"{}\",\"counterexample_steps\":{}}}",
                    f.oracle,
                    f.detail.replace('\\', "\\\\").replace('"', "\\\""),
                    f.counterexample
                        .as_ref()
                        .map_or("null".to_string(), |c| c.steps.len().to_string()),
                )
            })
            .collect();
        let unwitnessed: Vec<String> =
            self.unwitnessed.iter().map(|s| format!("\"{s}\"")).collect();
        format!(
            "{{\"protocol\":\"{}\",\"n\":{},\"rule\":\"{}\",\"depth\":{},\"faults\":{},\
             \"recoveries\":{},\"drops\":{},\"suspicions\":{},\"seed\":{},\
             \"certified_nonblocking\":{},\
             \"max_tolerated_failures\":{},\"quorum_f\":{},\"within_resilience\":{},\"plans\":{},\
             \"distinct_states\":{},\"actions\":{},\"fused\":{},\"truncated\":{},\
             \"prediction_complete\":{},\"unwitnessed\":[{}],\"blocking_witness_steps\":{},\
             \"failures\":[{}],\"ok\":{}}}",
            self.protocol.replace('\\', "\\\\").replace('"', "\\\""),
            self.n,
            rule_name(o.rule),
            o.depth,
            o.faults,
            o.recoveries,
            o.drops,
            o.suspicions,
            o.seed.map_or("null".to_string(), |s| s.to_string()),
            self.certified_nonblocking,
            self.max_tolerated_failures,
            self.quorum_f.map_or("null".to_string(), |f| f.to_string()),
            self.within_resilience,
            self.stats.plans,
            self.stats.distinct_states,
            self.stats.actions,
            self.stats.fused,
            self.stats.truncated,
            self.prediction_complete,
            unwitnessed.join(","),
            self.blocking_witness
                .as_ref()
                .map_or("null".to_string(), |w| w.steps.len().to_string()),
            failures.join(","),
            self.ok(),
        )
    }
}

/// A shrink predicate: does the runner (after lenient replay + drain)
/// still exhibit the violation? The flag reports whether some `Recover`
/// step failed its recovery-oracle check during replay.
type ShrinkPredicate<'a> = Box<dyn Fn(&Runner<'_>, bool) -> bool + 'a>;

/// Run the full check: build the analysis, explore every schedule within
/// the budgets, evaluate the four oracles, and shrink whatever witnesses
/// or violations turned up.
pub fn run_check(protocol: &Protocol, options: CheckOptions) -> Result<CheckReport, ProtocolError> {
    let analysis = Analysis::build(protocol)?;
    let theorem = theorem::check_with(protocol, &analysis);
    let resil = resilience::resilience_with(protocol, &theorem);
    let certified = theorem.nonblocking();
    // The theorem's resilience bound assumes Skeen's termination rule.
    // The quorum variant deliberately trades availability for partition
    // safety: it only promises progress while a majority survives, so
    // beyond that the nonblocking oracle must not expect termination —
    // and it makes no termination promise at all under an *imperfect*
    // detector (a false suspicion can always stall a round; the quorum
    // rule's contract there is safety, which the consistency oracle
    // verifies). Skeen's own rule, by contrast, claims nonblocking
    // unconditionally given its fault bound, so suspicions deliberately
    // do NOT relax `within_resilience` for it: the termination livelock
    // under repeated false suspicion is reported as a genuine
    // nonblocking failure — the FLP boundary made operational.
    let rule_tolerates = match options.rule {
        TerminationRule::QuorumSkeen => {
            let n = protocol.n_sites();
            (options.faults as usize) < n - n / 2 && options.suspicions == 0
        }
        _ => true,
    };
    // A quorum-based protocol's nonblocking guarantee is conditional on
    // its own fault model — at most f *acceptor* crashes on a reliable
    // network — not on the theorem's unconditional resilience bound.
    let quorum = protocol.quorum();
    let within_resilience = match quorum {
        Some(q) => options.faults as usize <= q.f && options.drops == 0,
        None => resil.tolerates(options.faults as usize) && rule_tolerates && options.drops == 0,
    };

    let exploration = explore::explore(protocol, &analysis, &options);
    let stats = exploration.stats.clone();
    let all_plans = options.vote_plan.is_none();

    let mut failures = Vec::new();

    // Hard per-state / per-recovery oracle violations, shrunk with the
    // predicate that re-detects the same class of violation.
    if let Some((oracle, detail, votes, path)) = &exploration.violation {
        let analysis_ref = &analysis;
        let predicate: ShrinkPredicate<'_> = match *oracle {
            "consistency" => Box::new(|r: &Runner<'_>, _| {
                let outcomes: Vec<_> = r.sites().iter().filter_map(|s| s.outcome).collect();
                outcomes.contains(&true) && outcomes.contains(&false)
            }),
            "prediction" => Box::new(move |r: &Runner<'_>, _| {
                r.sites().iter().enumerate().any(|(i, s)| {
                    s.visited.iter().enumerate().any(|(st, &v)| {
                        v && !analysis_ref.occupied(SiteId(i as u32), StateId(st as u32))
                    })
                })
            }),
            _ => Box::new(|_: &Runner<'_>, recovery_failed| recovery_failed),
        };
        let shrunk = shrink::shrink(protocol, &analysis, &options, votes, path, predicate);
        failures.push(OracleFailure {
            oracle,
            detail: detail.clone(),
            counterexample: Some(shrunk),
        });
    }

    // The blocking witness, shrunk to its minimal schedule.
    let blocking_witness = exploration.blocking_witness.as_ref().map(|(votes, path)| {
        shrink::shrink(protocol, &analysis, &options, votes, path, |r, _| {
            !Oracles::blocked_sites(r).is_empty()
        })
    });

    // Nonblocking oracle verdicts.
    if let Some(q) = quorum {
        // The theorem (correctly) calls the protocol BLOCKING under
        // unrestricted crashes; what the oracle verifies instead is the
        // quorum guarantee: no blocking while at most f acceptors crash.
        // Beyond f, blocking is permitted and no witness is demanded.
        if within_resilience {
            if let Some(w) = &blocking_witness {
                failures.push(OracleFailure {
                    oracle: "nonblocking",
                    detail: format!(
                        "quorum protocol blocked an operational site with at most f={} \
                         acceptor crashes ({} steps)",
                        q.f,
                        w.steps.len()
                    ),
                    counterexample: Some(w.clone()),
                });
            }
        }
    } else if certified && within_resilience {
        if let Some(w) = &blocking_witness {
            failures.push(OracleFailure {
                oracle: "nonblocking",
                detail: format!(
                    "theorem-certified protocol blocked an operational site within its \
                     resilience bound ({} steps)",
                    w.steps.len()
                ),
                counterexample: Some(w.clone()),
            });
        }
    } else if !certified
        && blocking_witness.is_none()
        && options.faults >= 1
        && all_plans
        && !stats.truncated
    {
        failures.push(OracleFailure {
            oracle: "nonblocking",
            detail: "theorem says BLOCKING but exhaustive exploration found no blocked \
                     operational site"
                .to_string(),
            counterexample: None,
        });
    }

    // Prediction completeness (only judged for exhaustive all-plan runs).
    let unwitnessed: Vec<String> = exploration
        .oracles
        .unwitnessed()
        .into_iter()
        .map(|(site, state)| exploration.oracles.slot_name(site, state))
        .collect();
    let prediction_complete = all_plans && !stats.truncated && unwitnessed.is_empty();
    if all_plans && !stats.truncated && !unwitnessed.is_empty() {
        failures.push(OracleFailure {
            oracle: "prediction",
            detail: format!(
                "analytic slots never witnessed operationally at full depth: {}",
                unwitnessed.join(", ")
            ),
            counterexample: None,
        });
    }

    Ok(CheckReport {
        protocol: protocol.name.clone(),
        n: protocol.n_sites(),
        options,
        certified_nonblocking: certified,
        max_tolerated_failures: resil.max_tolerated_failures,
        quorum_f: quorum.map(|q| q.f),
        within_resilience,
        stats,
        unwitnessed,
        prediction_complete,
        blocking_witness,
        failures,
        spill: exploration.spill,
    })
}
