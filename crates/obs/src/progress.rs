//! Wall-clock rate estimation for stderr progress reporting.
//!
//! Progress hooks across the workspace (`nbc analyze --progress`, `nbc
//! check --progress`) print one stderr line per reporting interval and
//! want an events/second figure for it. The estimate is intrinsically
//! wall-clock — the one place the observability layer touches a real
//! clock — which is why it lives behind this explicit, stderr-only
//! helper: simulation results and exported traces must never depend on
//! it, and every consumer keeps it out of stdout.

use std::time::Instant;

/// Events-per-second estimator over successive reporting ticks.
///
/// `Copy`, so a hook with no state of its own can park one in a
/// thread-local `Cell`:
///
/// ```
/// use std::cell::Cell;
/// use nbc_obs::progress::Rate;
///
/// thread_local! {
///     static RATE: Cell<Rate> = const { Cell::new(Rate::new()) };
/// }
/// let rate = RATE.with(|c| {
///     let mut r = c.get();
///     let rate = r.tick(4096);
///     c.set(r);
///     rate
/// });
/// assert!(rate.is_none()); // first tick has no interval yet
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Rate {
    last: Option<Instant>,
}

impl Rate {
    /// A fresh estimator; the first [`tick`](Rate::tick) establishes the
    /// baseline and yields `None`.
    pub const fn new() -> Self {
        Self { last: None }
    }

    /// Record that `events` events completed since the previous tick and
    /// return their rate per second. `None` on the first tick and
    /// whenever the clock did not advance measurably.
    pub fn tick(&mut self, events: u64) -> Option<f64> {
        let now = Instant::now();
        let prev = self.last.replace(now);
        let dt = now.duration_since(prev?).as_secs_f64();
        (dt > 0.0).then(|| events as f64 / dt)
    }
}
