//! The one-phase commit protocol (paper §"1-Phase Commit Protocol").
//!
//! The coordinator simply communicates the client's decision to all
//! participants. 1PC is the simplest commit protocol, but it is inadequate:
//! it does not allow a unilateral abort by a participant (e.g. when local
//! concurrency control — deadlock resolution under locking, or validation
//! failure under optimistic control — forces a site to back out). It is in
//! the catalog as the degenerate baseline; [`Protocol::validate_strict`]
//! rejects it because it has a single phase.
//!
//! [`Protocol::validate_strict`]: crate::protocol::Protocol::validate_strict

use crate::fsa::{Consume, Envelope, FsaBuilder, StateClass, Vote};
use crate::ids::{MsgKind, SiteId};
use crate::protocol::{InitialMsg, Paradigm, Protocol};

/// Build central-site 1PC for `n >= 2` sites.
///
/// The client's decision is modeled as coordinator nondeterminism: on the
/// request it either broadcasts `commit` or broadcasts `abort`.
///
/// # Panics
/// Panics if `n < 2`.
pub fn one_pc(n: usize) -> Protocol {
    assert!(n >= 2, "central-site protocols need a coordinator and >=1 slave");
    let slaves: Vec<SiteId> = (1..n as u32).map(SiteId).collect();

    let mut cb = FsaBuilder::new("coordinator");
    let q1 = cb.state("q1", StateClass::Initial);
    let a1 = cb.state("a1", StateClass::Aborted);
    let c1 = cb.state("c1", StateClass::Committed);
    // The client's commit-or-abort decision is the coordinator's own vote,
    // tagged like every other central protocol so an operational run can
    // steer it (untagged nondeterminism would leave the abort branch
    // unreachable in execution while still reachable analytically).
    cb.transition(
        q1,
        c1,
        Consume::one(SiteId::CLIENT, MsgKind::REQUEST),
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::COMMIT)).collect(),
        Some(Vote::Yes),
        "request(commit) / commit_2..commit_n",
    );
    cb.transition(
        q1,
        a1,
        Consume::one(SiteId::CLIENT, MsgKind::REQUEST),
        slaves.iter().map(|&s| Envelope::new(s, MsgKind::ABORT)).collect(),
        Some(Vote::No),
        "request(abort) / abort_2..abort_n",
    );

    let mut fsas = vec![cb.build()];
    let coord = SiteId(0);
    for _ in &slaves {
        let mut sb = FsaBuilder::new("slave");
        let qi = sb.state("q", StateClass::Initial);
        let ai = sb.state("a", StateClass::Aborted);
        let ci = sb.state("c", StateClass::Committed);
        // Note the absence of any vote: the slave cannot refuse.
        sb.transition(qi, ci, Consume::one(coord, MsgKind::COMMIT), vec![], None, "commit /");
        sb.transition(qi, ai, Consume::one(coord, MsgKind::ABORT), vec![], None, "abort /");
        fsas.push(sb.build());
    }

    Protocol::new(
        format!("central-site 1PC (n={n})"),
        Paradigm::CentralSite,
        fsas,
        vec![InitialMsg { src: SiteId::CLIENT, dst: coord, kind: MsgKind::REQUEST }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsa::Vote;

    #[test]
    fn slaves_cannot_vote() {
        let p = one_pc(3);
        p.validate().unwrap();
        for site in p.sites().skip(1) {
            let fsa = p.fsa(site);
            assert!(fsa.transitions().iter().all(|t| !matches!(t.vote, Some(Vote::No))));
        }
    }

    #[test]
    fn single_phase() {
        assert_eq!(one_pc(4).phase_count(), 1);
    }
}
