//! Phase synchronicity (paper §"Synchronicity within one state
//! transition").
//!
//! *A protocol is said to be synchronous within one state transition if one
//! site never leads another by more than one state transition during the
//! execution of the protocol.* Both 2PC paradigms — and both 3PC
//! extensions — have this property; it is what licenses the adjacency-based
//! Lemma in [`crate::canonical`]: for such protocols *the concurrency set
//! for a given state can only contain states that are adjacent to the given
//! state and the given state itself*.
//!
//! We check the property through that operative consequence, in the
//! *canonical quotient* of the protocol — the single automaton over state
//! classes (`q`, `w`, `p`, `a`, `c`, …) whose edges are the union of every
//! site's transitions, which is exactly the abstraction under which the
//! paper states the Lemma ("the similarity between 2PC protocols:
//! structural equivalence"). The check: for every occupied local state `s`
//! and every member `t` of its concurrency set, the classes of `s` and `t`
//! must be equal or adjacent in the quotient automaton. This correctly
//! classifies runs where a site *finishes early* by a unilateral abort —
//! such a site trails in raw transition count without ever being
//! concurrent with a non-adjacent class.
//!
//! For completeness the report also carries the raw maximum
//! transition-count lead, measured by exhaustive exploration of the
//! reachable graph augmented with per-site transition counters.

use std::collections::{BTreeSet, HashSet, VecDeque};

use crate::analysis::Analysis;
use crate::error::ProtocolError;
use crate::fsa::StateClass;
use crate::ids::{SiteId, StateId};
use crate::protocol::Protocol;
use crate::reach::{NodeId, ReachGraph, ReachOptions};

/// A concurrency-set member outside the adjacency set of the state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdjacencyEscape {
    /// The site whose concurrency set escapes adjacency.
    pub site: SiteId,
    /// The state whose concurrency set escapes adjacency.
    pub state: StateId,
    /// The other site occupying the non-adjacent state.
    pub other_site: SiteId,
    /// The concurrent state that is not adjacent.
    pub other_state: StateId,
}

/// Result of the synchronicity check.
#[derive(Clone, Debug)]
pub struct SyncReport {
    /// Protocol name.
    pub protocol: String,
    /// Concurrency-set members outside adjacency (empty iff the protocol
    /// is synchronous within one state transition in the Lemma-relevant
    /// sense).
    pub escapes: Vec<AdjacencyEscape>,
    /// Largest observed lead of one still-executing site over another, in
    /// raw transition counts.
    pub max_lead: u32,
    /// Per-site transition counts at the point of maximum lead.
    pub witness: Vec<u32>,
}

impl SyncReport {
    /// True iff every concurrency set lies within state adjacency — the
    /// property the Lemma requires of protocols synchronous within one
    /// state transition.
    pub fn synchronous_within_one(&self) -> bool {
        self.escapes.is_empty()
    }
}

/// Check synchronicity, building the analysis.
pub fn check(protocol: &Protocol) -> Result<SyncReport, ProtocolError> {
    let analysis = Analysis::build(protocol)?;
    Ok(check_with(protocol, &analysis, ReachOptions::default()))
}

/// Check against a precomputed [`Analysis`].
pub fn check_with(protocol: &Protocol, analysis: &Analysis, opts: ReachOptions) -> SyncReport {
    // Canonical quotient adjacency: class pairs connected by some site's
    // transition (undirected), plus reflexivity.
    let mut quotient: BTreeSet<(StateClass, StateClass)> = BTreeSet::new();
    for site in protocol.sites() {
        let fsa = protocol.fsa(site);
        for t in fsa.transitions() {
            let a = fsa.state(t.from).class;
            let b = fsa.state(t.to).class;
            quotient.insert((a, b));
            quotient.insert((b, a));
        }
    }
    let adjacent = |a: StateClass, b: StateClass| a == b || quotient.contains(&(a, b));

    let mut escapes = Vec::new();
    for site in protocol.sites() {
        let fsa = protocol.fsa(site);
        for idx in 0..fsa.state_count() {
            let s = StateId(idx as u32);
            if !analysis.occupied(site, s) {
                continue;
            }
            let s_class = fsa.state(s).class;
            for (j, t) in analysis.concurrency_slots(site, s) {
                let cls = analysis.class_of(j, t);
                if !adjacent(s_class, cls) {
                    escapes.push(AdjacencyEscape { site, state: s, other_site: j, other_state: t });
                }
            }
        }
    }

    // The raw lead measurement walks the retained graph; a streamed
    // analysis has none, so the adjacency verdict stands alone and the
    // lead is reported as zero with an empty witness.
    let (max_lead, witness) = match analysis.graph() {
        Some(graph) => max_transition_lead(protocol, graph, opts),
        None => (0, Vec::new()),
    };

    SyncReport { protocol: protocol.name.clone(), escapes, max_lead, witness }
}

/// Exhaustively measure the largest transition-count lead between two
/// still-executing sites. Sites that have reached a final state are
/// excluded from the spread: a unilateral abort legitimately finishes a
/// site early.
fn max_transition_lead(
    protocol: &Protocol,
    graph: &ReachGraph,
    opts: ReachOptions,
) -> (u32, Vec<u32>) {
    let n = protocol.n_sites();
    let init: (NodeId, Box<[u32]>) = (graph.initial(), vec![0u32; n].into_boxed_slice());
    let mut seen: HashSet<(NodeId, Box<[u32]>)> = HashSet::new();
    seen.insert(init.clone());
    let mut queue = VecDeque::from([init]);

    let mut max_lead = 0u32;
    let mut witness = vec![0u32; n];

    while let Some((node, depths)) = queue.pop_front() {
        let g = graph.node(node);
        let executing: Vec<u32> = (0..n)
            .filter(|&i| !graph.class_of(SiteId(i as u32), g.locals[i]).is_final())
            .map(|i| depths[i])
            .collect();
        if executing.len() >= 2 {
            let lead = executing.iter().max().unwrap() - executing.iter().min().unwrap();
            if lead > max_lead {
                max_lead = lead;
                witness = depths.to_vec();
            }
        }
        for e in graph.edges(node) {
            let mut next = depths.clone();
            next[e.site.index()] += 1;
            let key = (e.to, next);
            if !seen.contains(&key) {
                if seen.len() >= opts.max_states {
                    return (max_lead, witness);
                }
                seen.insert(key.clone());
                queue.push_back(key);
            }
        }
    }
    (max_lead, witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsa::{Consume, Envelope, FsaBuilder};
    use crate::ids::MsgKind;
    use crate::protocol::{InitialMsg, Paradigm};
    use crate::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};

    #[test]
    fn whole_catalog_is_synchronous_within_one() {
        // The paper asserts this for both paradigms, 2PC and 3PC alike.
        for p in crate::protocols::catalog(3) {
            let r = check(&p).unwrap();
            assert!(r.synchronous_within_one(), "{}: escapes {:?}", p.name, r.escapes);
        }
    }

    #[test]
    fn commit_paths_have_lead_at_most_one() {
        for p in [central_2pc(3), central_3pc(3), decentralized_2pc(3), decentralized_3pc(3)] {
            let r = check(&p).unwrap();
            assert!(
                r.max_lead <= 1,
                "{}: still-executing lead {} at {:?}",
                p.name,
                r.max_lead,
                r.witness
            );
        }
    }

    #[test]
    fn asynchronous_protocol_detected() {
        // Site 0 takes two spontaneous transitions before site 1 can move:
        // site 1's initial state is concurrent with a state two hops away.
        let mut b0 = FsaBuilder::new("runner");
        let q0 = b0.state("q", StateClass::Initial);
        let m0 = b0.state("m", StateClass::Custom(1));
        let z0 = b0.state("z", StateClass::Custom(2));
        let c0 = b0.state("c", StateClass::Committed);
        b0.transition(q0, m0, Consume::Spontaneous, vec![], None, "step1");
        b0.transition(
            m0,
            z0,
            Consume::Spontaneous,
            vec![Envelope::new(SiteId(1), MsgKind::COMMIT)],
            None,
            "step2 / commit",
        );
        b0.transition(z0, c0, Consume::one(SiteId(1), MsgKind::ACK), vec![], None, "ack /");
        let mut b1 = FsaBuilder::new("waiter");
        let q1 = b1.state("q", StateClass::Initial);
        let c1 = b1.state("c", StateClass::Committed);
        b1.transition(
            q1,
            c1,
            Consume::one(SiteId(0), MsgKind::COMMIT),
            vec![Envelope::new(SiteId(0), MsgKind::ACK)],
            None,
            "commit / ack",
        );

        let p = Protocol::new(
            "lead-2 protocol",
            Paradigm::Custom,
            vec![b0.build(), b1.build()],
            vec![],
        );
        let r = check(&p).unwrap();
        // The waiter's q co-occurs with runner states m and z, whose
        // classes are not among waiter-q's adjacent classes — an escape.
        assert!(!r.synchronous_within_one(), "escapes: {:?}", r.escapes);
        // And while the runner sits in z (two transitions in) the waiter is
        // still executing at zero transitions: a raw lead of 2.
        assert_eq!(r.max_lead, 2);
    }

    #[test]
    fn lockstep_protocol_is_synchronous() {
        let mut b0 = FsaBuilder::new("a");
        let q0 = b0.state("q", StateClass::Initial);
        let c0 = b0.state("c", StateClass::Committed);
        b0.transition(
            q0,
            c0,
            Consume::one(SiteId::CLIENT, MsgKind::REQUEST),
            vec![Envelope::new(SiteId(1), MsgKind::COMMIT)],
            None,
            "request / commit",
        );
        let mut b1 = FsaBuilder::new("b");
        let q1 = b1.state("q", StateClass::Initial);
        let c1 = b1.state("c", StateClass::Committed);
        b1.transition(q1, c1, Consume::one(SiteId(0), MsgKind::COMMIT), vec![], None, "commit");
        let p = Protocol::new(
            "token",
            Paradigm::Custom,
            vec![b0.build(), b1.build()],
            vec![InitialMsg { src: SiteId::CLIENT, dst: SiteId(0), kind: MsgKind::REQUEST }],
        );
        let r = check(&p).unwrap();
        assert!(r.synchronous_within_one());
        assert!(r.max_lead <= 1);
    }
}
