//! B9: parallel model-checking throughput — `nbc check` wall-clock and
//! distinct-state rate at 1/2/4 worker threads, plus the exhaustive
//! envelope the parallel sweep makes reachable (central protocols at
//! n=5).
//!
//! Every row first asserts the determinism contract (identical verdict,
//! `distinct_states` and `actions` at every thread count) and then
//! reports the wall-clock of each worker count. On a single-CPU host the
//! multi-thread rows measure orchestration overhead (queue + shard-lock
//! traffic), not speedup — EXPERIMENTS.md records which one a given table
//! was.

use std::time::{Duration, Instant};

use nbc_check::{run_check, CheckOptions};
use nbc_core::protocols::{central_2pc, central_3pc};
use nbc_core::Protocol;
use nbc_paxos::paxos_commit;

fn timed_check(protocol: &Protocol, threads: usize) -> (Duration, usize, u64, bool, bool) {
    let t = Instant::now();
    let report = run_check(protocol, CheckOptions { threads, ..CheckOptions::default() }).unwrap();
    (
        t.elapsed(),
        report.stats.distinct_states,
        report.stats.actions,
        report.ok(),
        report.stats.truncated,
    )
}

fn scaling_table() {
    println!("== check_scaling (full check wall-clock by worker threads) ==");
    let specs: Vec<(&str, Protocol)> = vec![
        ("central_2pc/4", central_2pc(4)),
        ("central_3pc/4", central_3pc(4)),
        ("paxos_commit/2+3", paxos_commit(2, 1)),
    ];
    for (label, protocol) in &specs {
        let mut base: Option<(usize, u64, bool)> = None;
        for threads in [1usize, 2, 4] {
            let (elapsed, states, actions, ok, truncated) = timed_check(protocol, threads);
            assert!(!truncated, "{label}: scaling row must be exhaustive");
            match base {
                None => base = Some((states, actions, ok)),
                Some(b) => assert_eq!(
                    b,
                    (states, actions, ok),
                    "{label}: results diverged at {threads} threads"
                ),
            }
            println!(
                "{label:<18} threads {threads}  states {states:>9}  actions {actions:>10}  \
                 {elapsed:>9.2?}  ({:>9.0} states/s)  verdict {}",
                states as f64 / elapsed.as_secs_f64(),
                if ok { "OK" } else { "FAIL" },
            );
        }
    }
}

fn envelope_table() {
    println!("\n== check_envelope (exhaustive n=5, default budgets) ==");
    for (label, protocol) in [("central_2pc/5", central_2pc(5)), ("central_3pc/5", central_3pc(5))]
    {
        let (elapsed, states, actions, ok, truncated) = timed_check(&protocol, 1);
        println!(
            "{label:<18} states {states:>9}  actions {actions:>10}  {elapsed:>9.2?}  verdict {}  {}",
            if ok { "OK" } else { "FAIL" },
            if truncated { "TRUNCATED" } else { "exhaustive" },
        );
    }
}

fn main() {
    scaling_table();
    envelope_table();
}
