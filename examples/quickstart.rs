//! Quickstart: analyze 2PC and 3PC with the fundamental nonblocking
//! theorem, then watch the termination protocol carry a 3PC transaction
//! through a coordinator crash.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nonblocking_commit::nbc_core::protocols::{central_2pc, central_3pc};
use nonblocking_commit::nbc_core::{theorem, Analysis};
use nonblocking_commit::nbc_engine::{
    run_with, CrashPoint, CrashSpec, RunConfig, TransitionProgress,
};

fn main() {
    // ---------------------------------------------------------------
    // 1. Static analysis: why 2PC blocks and 3PC does not.
    // ---------------------------------------------------------------
    let two_pc = central_2pc(3);
    let three_pc = central_3pc(3);

    println!("== The fundamental nonblocking theorem ==\n");
    println!("{}", theorem::check(&two_pc).unwrap());
    println!("{}", theorem::check(&three_pc).unwrap());

    // ---------------------------------------------------------------
    // 2. Execution: a commit round that survives a coordinator crash.
    // ---------------------------------------------------------------
    println!("== 3PC under a coordinator crash ==\n");
    let analysis = Analysis::build(&three_pc).unwrap();

    // The nastiest single-failure point: the coordinator durably decides
    // commit but reaches only one slave before dying (a non-atomic
    // transition). The termination protocol must carry everyone to commit.
    let config = RunConfig::happy(3).with_crash(CrashSpec {
        site: 0,
        point: CrashPoint::OnTransition {
            ordinal: 3, // the coordinator's commit broadcast
            progress: TransitionProgress::AfterMsgs(1),
        },
        recover_at: None,
    });
    let report = run_with(&three_pc, &analysis, config);
    println!("run: {report}");
    assert!(report.consistent);
    assert_eq!(report.decision(), Some(true));
    println!(
        "\nAll operational sites committed despite the crash — the backup \
         coordinator's decision rule\n(commit iff the concurrency set of its \
         state contains a commit state) carried the day.\n"
    );

    // ---------------------------------------------------------------
    // 3. The same crash under 2PC blocks.
    // ---------------------------------------------------------------
    println!("== The same crash under 2PC ==\n");
    let analysis2 = Analysis::build(&two_pc).unwrap();
    let config2 = RunConfig::happy(3)
        .with_rule(nonblocking_commit::nbc_engine::TerminationRule::Cooperative)
        .with_crash(CrashSpec {
            site: 0,
            point: CrashPoint::OnTransition {
                ordinal: 2, // the 2PC commit broadcast
                progress: TransitionProgress::AfterMsgs(0),
            },
            recover_at: None,
        });
    let report2 = run_with(&two_pc, &analysis2, config2);
    println!("run: {report2}");
    assert!(report2.any_blocked);
    println!(
        "\nThe slaves are stuck in their wait states: they can neither commit \
         (the coordinator may\nhave aborted) nor abort (it may have committed). \
         That is blocking — and the paper's\nwhole point.\n"
    );
}
