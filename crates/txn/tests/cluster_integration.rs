//! Cluster-level integration: distributed bank transfers under every
//! protocol, with crash injection, blocking, and recovery — the atomicity
//! story told through the conservation-of-money invariant.

use nbc_engine::{CrashPoint, CrashSpec, TransitionProgress};
use nbc_simnet::SimRng;
use nbc_txn::{BankWorkload, Cluster, ClusterConfig, Op, ProtocolKind, TxnResult};

fn cluster(kind: ProtocolKind, n: usize) -> Cluster {
    Cluster::new(ClusterConfig::new(n, kind))
}

fn seeded(c: &mut Cluster, w: &BankWorkload) {
    let r = c.execute(&w.setup_ops());
    assert_eq!(r, TxnResult::Committed, "setup must commit");
}

const KINDS: [ProtocolKind; 4] = [
    ProtocolKind::Central2pc,
    ProtocolKind::Central3pc,
    ProtocolKind::Decentralized2pc,
    ProtocolKind::Decentralized3pc,
];

#[test]
fn transfers_commit_and_conserve_money() {
    for kind in KINDS {
        let w0 = BankWorkload::new(3, 9, 1000, 11);
        let mut c = cluster(kind, 3);
        seeded(&mut c, &w0);
        let mut w = w0.clone();
        for _ in 0..25 {
            let (f, t, amt) = w.random_transfer();
            let r = c.transfer(&w, f, t, amt);
            assert_eq!(r, TxnResult::Committed, "{}", kind.name());
        }
        assert_eq!(c.total_balance(&w), w.expected_total(), "{}", kind.name());
        assert_eq!(c.stats.committed, 26, "{}", kind.name());
    }
}

#[test]
fn three_pc_transfers_survive_coordinator_crashes() {
    for kind in [ProtocolKind::Central3pc, ProtocolKind::Decentralized3pc] {
        let w0 = BankWorkload::new(3, 9, 1000, 5);
        let mut c = cluster(kind, 3);
        seeded(&mut c, &w0);
        let mut w = w0.clone();
        for i in 0..20u32 {
            let (f, t, amt) = w.random_transfer();
            // Crash site 0 at varying points in every third round.
            let crashes = if i % 3 == 0 {
                vec![CrashSpec {
                    site: 0,
                    point: CrashPoint::OnTransition {
                        ordinal: 1 + (i / 3) % 3,
                        progress: if i % 2 == 0 {
                            TransitionProgress::AfterMsgs(1)
                        } else {
                            TransitionProgress::BeforeLog
                        },
                    },
                    recover_at: None,
                }]
            } else {
                vec![]
            };
            let r = c.transfer_with_crashes(&w, f, t, amt, &crashes);
            assert_ne!(r, TxnResult::Blocked, "{}: 3PC never blocks", kind.name());
        }
        c.recover_all();
        assert_eq!(c.total_balance(&w), w.expected_total(), "{}", kind.name());
        assert_eq!(c.blocked_count(), 0);
    }
}

#[test]
fn two_pc_blocks_and_poisons_locks_until_recovery() {
    let w = BankWorkload::new(3, 6, 500, 2);
    let mut c = cluster(ProtocolKind::Central2pc, 3);
    seeded(&mut c, &w);

    // Coordinator dies right after durably committing, telling nobody:
    // the slaves block, the locks on accounts 0 and 1 stay held.
    let crash = CrashSpec {
        site: 0,
        point: CrashPoint::OnTransition { ordinal: 2, progress: TransitionProgress::AfterMsgs(0) },
        recover_at: None,
    };
    let r = c.transfer_with_crashes(&w, 0, 1, 50, &[crash]);
    assert_eq!(r, TxnResult::Blocked);
    assert_eq!(c.blocked_count(), 1);
    assert!(c.locked_keys() >= 2, "blocked transaction holds its locks");

    // A later transfer touching the same accounts dies on the lock
    // conflict and aborts.
    let r2 = c.transfer(&w, 0, 1, 10);
    assert_eq!(r2, TxnResult::Aborted, "poisoned by the blocked transaction");

    // A transfer on disjoint accounts still works.
    let r3 = c.transfer(&w, 2, 3, 10);
    assert_eq!(r3, TxnResult::Committed);

    // Recovery resolves the blocked transaction using the coordinator's
    // durable decision (commit), and money is conserved.
    c.recover_all();
    assert_eq!(c.blocked_count(), 0);
    assert_eq!(c.locked_keys(), 0);
    assert_eq!(c.total_balance(&w), w.expected_total());
    // The blocked transfer really committed.
    let b0 = BankWorkload::decode(c.get(w.site_of(0), &BankWorkload::key_of(0)).unwrap());
    assert_eq!(b0, 450, "account 0 debited by the blocked transfer");
}

#[test]
fn two_pc_blocked_round_with_undecided_coordinator_aborts_on_recovery() {
    let w = BankWorkload::new(2, 4, 500, 9);
    let mut c = cluster(ProtocolKind::Central2pc, 2);
    seeded(&mut c, &w);
    // Coordinator dies undecided in w1 (after collecting the vote but
    // before logging a decision): BeforeLog on its second transition.
    let crash = CrashSpec {
        site: 0,
        point: CrashPoint::OnTransition { ordinal: 2, progress: TransitionProgress::BeforeLog },
        recover_at: None,
    };
    let r = c.transfer_with_crashes(&w, 0, 1, 75, &[crash]);
    assert_eq!(r, TxnResult::Blocked);
    c.recover_all();
    // Undecided at every site: recovery aborts.
    assert_eq!(c.total_balance(&w), w.expected_total());
    let b0 = BankWorkload::decode(c.get(w.site_of(0), &BankWorkload::key_of(0)).unwrap());
    assert_eq!(b0, 500, "undecided transfer rolled back");
}

#[test]
fn no_vote_from_lock_conflict_aborts_whole_transaction() {
    let mut c = cluster(ProtocolKind::Central3pc, 2);
    // Two writes to the same key from one transaction are fine...
    let r = c.execute(&[
        Op::Write { site: 0, key: b"k".to_vec(), value: b"1".to_vec() },
        Op::Write { site: 1, key: b"other".to_vec(), value: b"x".to_vec() },
    ]);
    assert_eq!(r, TxnResult::Committed);
    assert_eq!(c.get(0, b"k"), Some(b"1".as_slice()));
}

#[test]
fn randomized_crash_storm_conserves_money_for_3pc() {
    let mut rng = SimRng::seed_from_u64(1234);
    for kind in [ProtocolKind::Central3pc, ProtocolKind::Decentralized3pc] {
        let w0 = BankWorkload::new(4, 12, 1000, 77);
        let mut c = cluster(kind, 4);
        seeded(&mut c, &w0);
        let mut w = w0.clone();
        for _ in 0..60 {
            let (f, t, amt) = w.random_transfer();
            let crashes = if rng.gen_bool(0.4) {
                vec![CrashSpec {
                    site: rng.gen_range(0usize..4),
                    point: CrashPoint::OnTransition {
                        ordinal: rng.gen_range(1u32..=3),
                        progress: match rng.gen_range(0usize..3) {
                            0 => TransitionProgress::BeforeLog,
                            1 => TransitionProgress::AfterMsgs(0),
                            _ => TransitionProgress::AfterMsgs(rng.gen_range(1u32..=3)),
                        },
                    },
                    recover_at: None,
                }]
            } else {
                vec![]
            };
            let r = c.transfer_with_crashes(&w, f, t, amt, &crashes);
            assert_ne!(r, TxnResult::Blocked, "{}", kind.name());
        }
        c.recover_all();
        assert_eq!(c.total_balance(&w), w.expected_total(), "{}", kind.name());
    }
}

#[test]
fn randomized_crash_storm_2pc_blocks_but_conserves_after_recovery() {
    let mut rng = SimRng::seed_from_u64(4321);
    let w0 = BankWorkload::new(3, 9, 1000, 99);
    let mut c = cluster(ProtocolKind::Central2pc, 3);
    seeded(&mut c, &w0);
    let mut w = w0.clone();
    let mut blocked_seen = 0;
    for _ in 0..80 {
        let (f, t, amt) = w.random_transfer();
        let crashes = if rng.gen_bool(0.5) {
            vec![CrashSpec {
                site: 0,
                point: CrashPoint::OnTransition {
                    ordinal: 2,
                    progress: TransitionProgress::AfterMsgs(rng.gen_range(0u32..=2)),
                },
                recover_at: None,
            }]
        } else {
            vec![]
        };
        if c.transfer_with_crashes(&w, f, t, amt, &crashes) == TxnResult::Blocked {
            blocked_seen += 1;
        }
    }
    assert!(blocked_seen > 0, "2PC coordinator crashes must block sometimes");
    c.recover_all();
    assert_eq!(c.total_balance(&w), w.expected_total());
    assert_eq!(c.blocked_count(), 0);
}

#[test]
fn throughput_shape_2pc_strands_transactions_3pc_does_not() {
    // The qualitative claim behind the failure-throughput benchmark: under
    // identical coordinator-crash pressure, every 3PC round decides, while
    // 2PC strands a visible fraction.
    let run = |kind: ProtocolKind| {
        let w0 = BankWorkload::new(3, 9, 1000, 55);
        let mut c = cluster(kind, 3);
        seeded(&mut c, &w0);
        let mut w = w0.clone();
        for i in 0..40u32 {
            let (f, t, amt) = w.random_transfer();
            let crashes = if i % 4 == 0 {
                vec![CrashSpec {
                    site: 0,
                    point: CrashPoint::OnTransition {
                        ordinal: 2,
                        progress: TransitionProgress::AfterMsgs(0),
                    },
                    recover_at: None,
                }]
            } else {
                vec![]
            };
            let _ = c.transfer_with_crashes(&w, f, t, amt, &crashes);
        }
        (c.stats.committed, c.stats.blocked)
    };
    let (committed_2pc, blocked_2pc) = run(ProtocolKind::Central2pc);
    let (committed_3pc, blocked_3pc) = run(ProtocolKind::Central3pc);
    assert!(blocked_2pc > 0, "2PC must strand transactions");
    assert_eq!(blocked_3pc, 0, "3PC must not block");
    assert!(
        committed_3pc > committed_2pc,
        "3PC throughput under failures exceeds 2PC ({committed_3pc} vs {committed_2pc})"
    );
}

mod inventory_and_checkpoint {
    use super::*;
    use nbc_txn::InventoryWorkload;

    #[test]
    fn inventory_orders_conserve_stock_under_crashes() {
        let mut rng = SimRng::seed_from_u64(8);
        for kind in [ProtocolKind::Central3pc, ProtocolKind::Decentralized3pc] {
            let w0 = InventoryWorkload::new(3, 6, 100, 13);
            let mut c = cluster(kind, 3);
            assert_eq!(c.execute(&w0.setup_ops()), TxnResult::Committed);
            let mut w = w0.clone();
            for _ in 0..40 {
                let (item, qty) = w.random_order();
                let crashes = if rng.gen_bool(0.3) {
                    vec![CrashSpec {
                        site: rng.gen_range(0usize..3),
                        point: CrashPoint::OnTransition {
                            ordinal: rng.gen_range(1u32..=3),
                            progress: TransitionProgress::AfterMsgs(rng.gen_range(0u32..=2)),
                        },
                        recover_at: None,
                    }]
                } else {
                    vec![]
                };
                let r = c.place_order(&w, item, qty, &crashes);
                assert_ne!(r, TxnResult::Blocked, "{}", kind.name());
            }
            c.recover_all();
            for (i, total) in c.inventory_totals(&w).iter().enumerate() {
                assert_eq!(*total, 100, "{}: item {i} stock+sold drifted", kind.name());
            }
        }
    }

    #[test]
    fn checkpoint_compacts_and_preserves_state() {
        let w0 = BankWorkload::new(3, 9, 1000, 21);
        let mut c = cluster(ProtocolKind::Central3pc, 3);
        seeded(&mut c, &w0);
        let mut w = w0.clone();
        for _ in 0..30 {
            let (f, t, amt) = w.random_transfer();
            assert_eq!(c.transfer(&w, f, t, amt), TxnResult::Committed);
        }
        let before_bytes = c.wal_bytes();
        let balances: Vec<i64> = (0..9)
            .map(|a| BankWorkload::decode(c.get(w.site_of(a), &BankWorkload::key_of(a)).unwrap()))
            .collect();
        c.checkpoint();
        assert!(c.wal_bytes() < before_bytes, "compaction must shrink logs");

        // State survives compaction, and the cluster keeps working.
        let after: Vec<i64> = (0..9)
            .map(|a| BankWorkload::decode(c.get(w.site_of(a), &BankWorkload::key_of(a)).unwrap()))
            .collect();
        assert_eq!(balances, after);
        for _ in 0..10 {
            let (f, t, amt) = w.random_transfer();
            assert_eq!(c.transfer(&w, f, t, amt), TxnResult::Committed);
        }
        assert_eq!(c.total_balance(&w), w.expected_total());
    }

    #[test]
    fn checkpoint_then_crash_recovery_replays_from_snapshot() {
        let w0 = BankWorkload::new(3, 6, 500, 3);
        let mut c = cluster(ProtocolKind::Central3pc, 3);
        seeded(&mut c, &w0);
        let mut w = w0.clone();
        c.checkpoint();
        // Post-checkpoint transfers, one with a crash that forces a
        // missed-decision replay from the compacted log.
        assert_eq!(c.transfer(&w, 0, 1, 25), TxnResult::Committed);
        let crash = CrashSpec {
            site: 1,
            point: CrashPoint::OnTransition { ordinal: 2, progress: TransitionProgress::BeforeLog },
            recover_at: None,
        };
        let (f, t, amt) = w.random_transfer();
        let _ = c.transfer_with_crashes(&w, f, t, amt, &[crash]);
        c.recover_all();
        assert_eq!(c.total_balance(&w), w.expected_total());
    }

    #[test]
    #[should_panic(expected = "blocked")]
    fn checkpoint_refuses_blocked_transactions() {
        let w = BankWorkload::new(3, 6, 500, 2);
        let mut c = cluster(ProtocolKind::Central2pc, 3);
        seeded(&mut c, &w);
        let crash = CrashSpec {
            site: 0,
            point: CrashPoint::OnTransition {
                ordinal: 2,
                progress: TransitionProgress::AfterMsgs(0),
            },
            recover_at: None,
        };
        assert_eq!(c.transfer_with_crashes(&w, 0, 1, 50, &[crash]), TxnResult::Blocked);
        c.checkpoint(); // must panic
    }
}
