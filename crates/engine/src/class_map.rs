//! Mapping between [`StateClass`] and the `u8` class codes persisted in
//! WAL records and carried by termination-protocol messages.

use nbc_core::StateClass;
use nbc_storage::recovery::class_codes;

/// Encode a state class as the storage/wire code.
pub fn encode_class(class: StateClass) -> u8 {
    match class {
        StateClass::Initial => class_codes::INITIAL,
        StateClass::Wait => class_codes::WAIT,
        StateClass::Prepared => class_codes::PREPARED,
        StateClass::Aborted => class_codes::ABORTED,
        StateClass::Committed => class_codes::COMMITTED,
        StateClass::Custom(k) => class_codes::CUSTOM_BASE + k,
    }
}

/// Decode a storage/wire code back to a state class.
///
/// # Panics
/// Panics on codes between the reserved range and `CUSTOM_BASE` (they are
/// never produced by [`encode_class`]).
pub fn decode_class(code: u8) -> StateClass {
    match code {
        class_codes::INITIAL => StateClass::Initial,
        class_codes::WAIT => StateClass::Wait,
        class_codes::PREPARED => StateClass::Prepared,
        class_codes::ABORTED => StateClass::Aborted,
        class_codes::COMMITTED => StateClass::Committed,
        c if c >= class_codes::CUSTOM_BASE => StateClass::Custom(c - class_codes::CUSTOM_BASE),
        other => panic!("invalid class code {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_classes() {
        for class in [
            StateClass::Initial,
            StateClass::Wait,
            StateClass::Prepared,
            StateClass::Aborted,
            StateClass::Committed,
            StateClass::Custom(0),
            StateClass::Custom(7),
        ] {
            assert_eq!(decode_class(encode_class(class)), class);
        }
    }

    #[test]
    #[should_panic]
    fn reserved_gap_rejected() {
        let _ = decode_class(9);
    }
}
