//! Pipeline invariants under concurrency and injected crashes, driven by
//! seeded random sweeps: money conservation, per-round atomicity (the
//! scheduler asserts it internally on every round), lock hygiene, and
//! bit-identical determinism.

use nbc_pipeline::{bank_transfer_txns, Pipeline, PipelineConfig, PipelineTxn, ThroughputReport};
use nbc_simnet::SimRng;
use nbc_txn::{BankWorkload, ProtocolKind};

fn run_once(
    kind: ProtocolKind,
    seed: u64,
    txns: usize,
    crash_pct: u32,
) -> (ThroughputReport, i64, i64, usize) {
    let mut w = BankWorkload::new(3, 12, 1_000, seed);
    let mut p = Pipeline::new(
        PipelineConfig::new(3, kind).with_in_flight(8).with_group_window(3).with_reap_after(60),
    );
    let setup = p.run(vec![PipelineTxn::from_ops(&w.setup_ops())]);
    assert_eq!(setup.committed, 1, "setup must commit");
    let mut rng = SimRng::seed_from_u64(seed ^ 0xF00D);
    let r = p.run(bank_transfer_txns(&mut w, txns, crash_pct, &mut rng));
    (r, p.total_balance(&w), w.expected_total(), p.locked_keys())
}

/// ≥8 concurrent transfers with a 30% coordinator-crash rate: every round
/// decides (in flight or by reaping), money is conserved, and no lock
/// survives the run. The scheduler itself asserts the atomicity invariant
/// of every commit round, so a violation panics the sweep.
#[test]
fn conservation_under_concurrent_crashes() {
    for (case, kind) in [
        ProtocolKind::Central2pc,
        ProtocolKind::Central3pc,
        ProtocolKind::Decentralized2pc,
        ProtocolKind::Decentralized3pc,
    ]
    .iter()
    .enumerate()
    {
        for round in 0..6u64 {
            let seed = 0xC011 + 97 * case as u64 + round;
            let (r, balance, expected, locked) = run_once(*kind, seed, 24, 30);
            assert_eq!(r.decided(), 24, "{kind:?} seed {seed}: every txn decides: {r}");
            assert_eq!(balance, expected, "{kind:?} seed {seed}: conservation: {r}");
            assert_eq!(locked, 0, "{kind:?} seed {seed}: locks must drain: {r}");
        }
    }
}

/// 3PC never blocks: with the nonblocking protocol every crashy round
/// still decides in flight, so the reaper has nothing to do.
#[test]
fn three_pc_rounds_never_block() {
    for seed in 0..8u64 {
        let (r, ..) = run_once(ProtocolKind::Central3pc, 0x3BC0 + seed, 20, 40);
        assert_eq!(r.blocked, 0, "3PC must not block: {r}");
    }
}

/// 2PC under coordinator crashes does block sometimes, and the reaper
/// resolves every blocked round without losing money.
#[test]
fn two_pc_blocks_and_reaping_conserves() {
    let mut saw_blocked = false;
    for seed in 0..10u64 {
        let (r, balance, expected, locked) =
            run_once(ProtocolKind::Central2pc, 0x2BC0 + seed, 24, 50);
        saw_blocked |= r.blocked > 0;
        assert_eq!(balance, expected, "seed {seed}: conservation: {r}");
        assert_eq!(locked, 0, "seed {seed}: strand-locks must be reaped: {r}");
    }
    assert!(saw_blocked, "50% crash rate over 240 2PC rounds must block at least once");
}

/// Same seed, same input ⇒ bit-identical ThroughputReport and final
/// balances. This is the pipeline's core determinism contract.
#[test]
fn same_seed_same_report() {
    for kind in [ProtocolKind::Central2pc, ProtocolKind::Central3pc] {
        let a = run_once(kind, 0xDE7, 30, 35);
        let b = run_once(kind, 0xDE7, 30, 35);
        assert_eq!(a.0, b.0, "{kind:?}: reports must be identical");
        assert_eq!(a.1, b.1);
    }
}

/// Group commit is observable end to end: a wide window saves syncs, a
/// zero window saves none, and the saved count never exceeds requests.
#[test]
fn group_commit_accounting() {
    let mut w = BankWorkload::new(3, 12, 1_000, 77);
    let mut p =
        Pipeline::new(PipelineConfig::new(3, ProtocolKind::Central3pc).with_group_window(4));
    p.run(vec![PipelineTxn::from_ops(&w.setup_ops())]);
    let mut rng = SimRng::seed_from_u64(77);
    let r = p.run(bank_transfer_txns(&mut w, 30, 0, &mut rng));
    assert!(r.syncs_saved > 0, "{r}");
    assert_eq!(r.wal_syncs, r.wal_forces + r.syncs_saved);
    assert!(r.wal_forces > 0, "durability still forces the log sometimes");
}
