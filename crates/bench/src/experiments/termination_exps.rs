//! E9/E10 — termination decision tables, exhaustive termination sweeps,
//! and the k-resiliency corollary.

use nbc_core::canonical::canonical_3pc;
use nbc_core::protocols::{catalog, central_2pc, central_3pc, decentralized_3pc};
use nbc_core::{resilience, termination, Analysis};
use nbc_engine::{enumerate_crash_specs, sweep, RunConfig, TerminationRule};

use crate::table::Table;

/// E9 — "Termination protocol for the canonical 3PC": the decision table
/// (commit iff s ∈ {p, c}), then an exhaustive crash sweep in the engine
/// showing every run terminates consistently.
pub fn e9_termination() -> String {
    let mut out = String::new();

    // Canonical decision table.
    let can = canonical_3pc();
    let mut t = Table::new(["backup state s", "decision"]);
    for (i, st) in can.states().iter().enumerate() {
        t.row([st.name.clone(), can.backup_decision(i as u32).to_string()]);
    }
    out.push_str("Canonical 3PC backup decision table:\n");
    out.push_str(&t.render());
    out.push_str("Paper: commit if s ∈ {p, c}; abort if s ∈ {q, w, a}.\n\n");

    // Per-protocol decision tables (exact analysis).
    for p in [central_3pc(3), decentralized_3pc(3)] {
        let a = Analysis::build(&p).expect("analyzable");
        let mut t = Table::new(["site", "state", "class", "backup rule", "cautious rule"]);
        for row in termination::decision_table(&p, &a) {
            t.row([
                row.site.to_string(),
                row.state_name,
                row.class.letter().to_string(),
                row.backup.to_string(),
                row.cautious.to_string(),
            ]);
        }
        out.push_str(&format!("{}:\n{}\n", p.name, t.render()));
    }
    out.push_str(
        "Note: the per-state tables apply the rule verbatim to each exact \
         state. The one divergence\nfrom the canonical table is the central \
         coordinator's p1 (abort): CS(p1) contains no commit\nstate because \
         slaves cannot commit before the coordinator does — and aborting \
         there is safe\nfor the same reason. The engine applies the rule per \
         state *class* (the canonical form),\nwhich commits from p1; both \
         choices are correct, and the class form is what keeps cascaded\n\
         backup handoffs deciding identically.\n\n",
    );

    // Exhaustive engine sweeps.
    let mut t =
        Table::new(["protocol", "rule", "crash points", "consistent", "blocked", "all decided"]);
    for p in [central_3pc(3), decentralized_3pc(3), central_2pc(3)] {
        let a = Analysis::build(&p).expect("analyzable");
        let specs = enumerate_crash_specs(&p, None);
        for rule in [TerminationRule::Skeen, TerminationRule::Cooperative] {
            let base = RunConfig::happy(3).with_rule(rule);
            let s = sweep(&p, &a, &base, &specs);
            t.row([
                p.name.clone(),
                format!("{rule:?}"),
                s.total.to_string(),
                format!("{}/{}", s.consistent, s.total),
                s.blocked.to_string(),
                s.fully_decided.to_string(),
            ]);
        }
    }
    out.push_str("Exhaustive single-crash termination sweeps:\n");
    out.push_str(&t.render());
    out.push_str(
        "\nShape: 3PC terminates every run (0 blocked) under the paper's \
         rule; 2PC stays consistent but exhibits its blocking window.\n",
    );
    out
}

/// E10 — the corollary: resiliency to k−1 failures needs a clean subset of
/// k sites.
pub fn e10_resilience() -> String {
    let mut t =
        Table::new(["protocol", "n", "clean sites", "max tolerated failures", "tolerates n-1?"]);
    for n in [3usize, 5] {
        for p in catalog(n) {
            let r = resilience::resilience(&p).expect("analyzable");
            t.row([
                p.name.clone(),
                n.to_string(),
                r.clean_count().to_string(),
                r.max_tolerated_failures.to_string(),
                if r.tolerates(n - 1) { "yes".into() } else { "no".to_string() },
            ]);
        }
    }
    format!(
        "{}\nShape: 2PC tolerates zero failures without risking blocking \
         (central 2PC's single clean site is the coordinator itself); 3PC \
         tolerates n−1.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_decision_table_matches_paper() {
        let s = e9_termination();
        assert!(s.contains("commit if s ∈ {p, c}"));
        assert!(s.contains("0")); // zero blocked for 3PC
    }

    #[test]
    fn e10_shapes() {
        let s = e10_resilience();
        assert!(s.contains("yes"));
        assert!(s.contains("no"));
    }
}
