//! Run outcomes and the invariant auditor.

use std::fmt;

use nbc_obs::json::{array, string, Obj};
use nbc_simnet::Time;

/// The fate of one site at the end of a run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SiteOutcome {
    /// Operational and committed.
    Committed,
    /// Operational and aborted.
    Aborted,
    /// Operational but blocked by the termination protocol.
    Blocked,
    /// Operational, neither decided nor blocked (should not happen in a
    /// quiescent run; indicates a truncated run).
    InProgress,
    /// Crashed with a durable commit in its log.
    DownCommitted,
    /// Crashed with a durable abort in its log.
    DownAborted,
    /// Crashed without a durable decision.
    DownUndecided,
}

impl SiteOutcome {
    /// The decision this outcome implies, if any.
    pub fn decision(self) -> Option<bool> {
        match self {
            Self::Committed | Self::DownCommitted => Some(true),
            Self::Aborted | Self::DownAborted => Some(false),
            _ => None,
        }
    }

    /// True if the site is up (not crashed) at the end of the run.
    pub fn operational(self) -> bool {
        matches!(self, Self::Committed | Self::Aborted | Self::Blocked | Self::InProgress)
    }
}

impl fmt::Display for SiteOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Committed => "committed",
            Self::Aborted => "aborted",
            Self::Blocked => "blocked",
            Self::InProgress => "in-progress",
            Self::DownCommitted => "down(committed)",
            Self::DownAborted => "down(aborted)",
            Self::DownUndecided => "down(undecided)",
        })
    }
}

/// The audited result of one run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-site outcomes.
    pub outcomes: Vec<SiteOutcome>,
    /// **Atomicity invariant**: no two sites (operational or crashed with a
    /// durable log) decided differently. This must hold for every run of a
    /// correct protocol+termination-rule combination; the `NaiveCs` rule on
    /// 2PC deliberately violates it.
    pub consistent: bool,
    /// True if any operational site ended blocked.
    pub any_blocked: bool,
    /// **Nonblocking verdict**: every operational site reached a decision
    /// (none blocked, none stuck in progress).
    pub all_operational_decided: bool,
    /// Total messages sent on the network.
    pub msgs_sent: u64,
    /// Simulation time of the last processed event.
    pub finished_at: Time,
    /// Events processed.
    pub events: usize,
    /// True if the run hit the event limit (results incomplete).
    pub truncated: bool,
    /// Backup elections entered during the run (termination-protocol
    /// round count). Maintained by an engine counter, so it is populated
    /// whether or not tracing is on.
    pub elections: u64,
    /// Execution trace (populated when `RunConfig::record_trace` is set).
    pub trace: Vec<String>,
}

impl RunReport {
    /// Audit the outcomes and assemble the report.
    pub fn assemble(
        outcomes: Vec<SiteOutcome>,
        msgs_sent: u64,
        finished_at: Time,
        events: usize,
        truncated: bool,
    ) -> Self {
        Self::assemble_with_trace(outcomes, msgs_sent, finished_at, events, truncated, Vec::new())
    }

    /// As [`RunReport::assemble`], attaching a recorded trace.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_with_trace(
        outcomes: Vec<SiteOutcome>,
        msgs_sent: u64,
        finished_at: Time,
        events: usize,
        truncated: bool,
        trace: Vec<String>,
    ) -> Self {
        let mut commit_seen = false;
        let mut abort_seen = false;
        let mut any_blocked = false;
        let mut all_operational_decided = true;
        for o in &outcomes {
            match o.decision() {
                Some(true) => commit_seen = true,
                Some(false) => abort_seen = true,
                None => {}
            }
            if *o == SiteOutcome::Blocked {
                any_blocked = true;
            }
            if o.operational() && o.decision().is_none() {
                all_operational_decided = false;
            }
        }
        Self {
            outcomes,
            consistent: !(commit_seen && abort_seen),
            any_blocked,
            all_operational_decided,
            msgs_sent,
            finished_at,
            events,
            truncated,
            elections: 0,
            trace,
        }
    }

    /// The unanimous decision, if one exists.
    pub fn decision(&self) -> Option<bool> {
        if !self.consistent {
            return None;
        }
        self.outcomes.iter().find_map(|o| o.decision())
    }

    /// Count of sites that committed (operational or down).
    pub fn committed_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.decision() == Some(true)).count()
    }

    /// Encode the report as a JSON object (for `--json` CLI output). The
    /// trace, when recorded, is included as an array of its lines.
    pub fn to_json(&self) -> String {
        let outcomes = array(self.outcomes.iter().map(|o| string(&o.to_string())));
        let mut o = Obj::new()
            .raw("outcomes", &outcomes)
            .bool("consistent", self.consistent)
            .bool("any_blocked", self.any_blocked)
            .bool("all_operational_decided", self.all_operational_decided)
            .num("msgs_sent", self.msgs_sent)
            .num("finished_at", self.finished_at)
            .num("events", self.events as u64)
            .bool("truncated", self.truncated)
            .num("elections", self.elections);
        o = match self.decision() {
            Some(commit) => o.bool("decision", commit),
            None => o.raw("decision", "null"),
        };
        if !self.trace.is_empty() {
            o = o.raw("trace", &array(self.trace.iter().map(|l| string(l))));
        }
        o.build()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "site{i}={o}")?;
        }
        write!(
            f,
            "] consistent={} blocked={} msgs={} t={}",
            self.consistent, self.any_blocked, self.msgs_sent, self.finished_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_flags_inconsistency() {
        let r = RunReport::assemble(
            vec![SiteOutcome::Committed, SiteOutcome::Aborted],
            10,
            5,
            3,
            false,
        );
        assert!(!r.consistent);
        assert_eq!(r.decision(), None);
    }

    #[test]
    fn down_durable_decisions_count_for_atomicity() {
        let r = RunReport::assemble(
            vec![SiteOutcome::DownCommitted, SiteOutcome::Aborted],
            0,
            0,
            0,
            false,
        );
        assert!(!r.consistent);
    }

    #[test]
    fn blocked_is_not_inconsistent() {
        let r = RunReport::assemble(
            vec![SiteOutcome::Blocked, SiteOutcome::Blocked, SiteOutcome::DownUndecided],
            0,
            0,
            0,
            false,
        );
        assert!(r.consistent);
        assert!(r.any_blocked);
        assert!(!r.all_operational_decided);
        assert_eq!(r.decision(), None);
    }

    #[test]
    fn unanimous_commit_reported() {
        let r = RunReport::assemble(
            vec![SiteOutcome::Committed, SiteOutcome::Committed, SiteOutcome::DownUndecided],
            7,
            9,
            4,
            false,
        );
        assert!(r.consistent);
        assert_eq!(r.decision(), Some(true));
        assert_eq!(r.committed_count(), 2);
        assert!(r.all_operational_decided);
    }

    #[test]
    fn display_is_compact() {
        let r = RunReport::assemble(vec![SiteOutcome::Committed], 1, 2, 3, false);
        let s = r.to_string();
        assert!(s.contains("site0=committed"));
        assert!(s.contains("consistent=true"));
    }

    #[test]
    fn json_roundtrips_structure() {
        let r = RunReport::assemble_with_trace(
            vec![SiteOutcome::Committed, SiteOutcome::DownUndecided],
            7,
            9,
            4,
            false,
            vec!["t=0    site0: q1 -> w1 (logged)".to_string()],
        );
        let j = r.to_json();
        nbc_obs::json::validate(&j).unwrap();
        assert!(j.contains("\"outcomes\":[\"committed\",\"down(undecided)\"]"), "{j}");
        assert!(j.contains("\"decision\":true"), "{j}");
        assert!(j.contains("\"trace\":["), "{j}");

        let blocked = RunReport::assemble(vec![SiteOutcome::Blocked], 0, 0, 0, false);
        let j = blocked.to_json();
        nbc_obs::json::validate(&j).unwrap();
        assert!(j.contains("\"decision\":null"), "{j}");
        assert!(!j.contains("\"trace\""), "{j}");
    }
}
