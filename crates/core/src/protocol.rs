//! A commit protocol instance: one FSA per participating site, plus the
//! initial contents of the network tape.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::ProtocolError;
use crate::fsa::Fsa;
use crate::ids::{MsgKind, SiteId};

/// The two generic classes of commit protocols the paper considers.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Paradigm {
    /// One distinguished coordinator directs the slaves; a slave
    /// communicates only with the coordinator, and during each phase the
    /// coordinator sends the same message to each slave and waits for a
    /// response from each.
    CentralSite,
    /// No distinguished sites: every site runs the same protocol and
    /// communicates with every other site in rounds of message interchange.
    Decentralized,
    /// Anything else (user-defined protocols under analysis).
    Custom,
}

impl fmt::Display for Paradigm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::CentralSite => "central site",
            Self::Decentralized => "fully decentralized",
            Self::Custom => "custom",
        })
    }
}

/// An initial message pre-loaded on the network tape.
///
/// The paper does not model how the transaction is distributed to the
/// sites; the stimulus ("request" for a central coordinator, "xact" for
/// every decentralized peer) is simply received. We model it as a message
/// from [`SiteId::CLIENT`] outstanding in the initial global state.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct InitialMsg {
    /// Sender (usually [`SiteId::CLIENT`]).
    pub src: SiteId,
    /// Receiving site.
    pub dst: SiteId,
    /// Message kind.
    pub kind: MsgKind,
}

/// Quorum structure of a consensus-based protocol: the trailing
/// `2f + 1` sites are *acceptors* whose only job is making the decision
/// durable; any `f` of them may crash without blocking the participants.
///
/// The participants (transaction manager / resource managers in
/// Gray–Lamport terms) are the sites `0..acceptors_from`; the acceptors
/// are `acceptors_from..n_sites`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct QuorumSpec {
    /// Number of acceptor crashes the protocol absorbs without blocking.
    pub f: usize,
    /// First acceptor site index; acceptors are `acceptors_from..n_sites`.
    pub acceptors_from: usize,
}

/// A fully instantiated commit protocol for a fixed set of sites.
#[derive(Clone, Debug)]
pub struct Protocol {
    /// Display name, e.g. `"central-site 3PC (n=4)"`.
    pub name: String,
    /// Which paradigm the protocol belongs to.
    pub paradigm: Paradigm,
    fsas: Vec<Fsa>,
    initial_msgs: Vec<InitialMsg>,
    msg_names: BTreeMap<MsgKind, String>,
    quorum: Option<QuorumSpec>,
}

impl Protocol {
    /// Assemble a protocol. `fsas[i]` is the automaton run by site `i`.
    pub fn new(
        name: impl Into<String>,
        paradigm: Paradigm,
        fsas: Vec<Fsa>,
        initial_msgs: Vec<InitialMsg>,
    ) -> Self {
        Self {
            name: name.into(),
            paradigm,
            fsas,
            initial_msgs,
            msg_names: BTreeMap::new(),
            quorum: None,
        }
    }

    /// Declare this protocol quorum-based (see [`QuorumSpec`]).
    pub fn set_quorum(&mut self, spec: QuorumSpec) {
        self.quorum = Some(spec);
    }

    /// Builder-style [`Protocol::set_quorum`].
    pub fn with_quorum(mut self, spec: QuorumSpec) -> Self {
        self.set_quorum(spec);
        self
    }

    /// The quorum structure, if this is a consensus-based protocol.
    #[inline]
    pub fn quorum(&self) -> Option<QuorumSpec> {
        self.quorum
    }

    /// True if `site` is an acceptor of a quorum-based protocol.
    pub fn is_acceptor(&self, site: usize) -> bool {
        self.quorum.is_some_and(|q| site >= q.acceptors_from)
    }

    /// Number of participant (non-acceptor) sites. Equals
    /// [`Protocol::n_sites`] for non-quorum protocols.
    pub fn n_participants(&self) -> usize {
        self.quorum.map_or(self.n_sites(), |q| q.acceptors_from)
    }

    /// Number of participating sites.
    #[inline]
    pub fn n_sites(&self) -> usize {
        self.fsas.len()
    }

    /// All site ids of this instance.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> {
        (0..self.n_sites() as u32).map(SiteId)
    }

    /// The automaton run by `site`.
    #[inline]
    pub fn fsa(&self, site: SiteId) -> &Fsa {
        &self.fsas[site.index()]
    }

    /// All automata, indexed by site.
    #[inline]
    pub fn fsas(&self) -> &[Fsa] {
        &self.fsas
    }

    /// Initial network-tape contents.
    #[inline]
    pub fn initial_msgs(&self) -> &[InitialMsg] {
        &self.initial_msgs
    }

    /// Register a human-readable name for a custom message kind.
    pub fn name_msg(&mut self, kind: MsgKind, name: impl Into<String>) {
        self.msg_names.insert(kind, name.into());
    }

    /// Resolve a message kind to a display name.
    pub fn msg_name(&self, kind: MsgKind) -> String {
        if let Some(n) = kind.builtin_name() {
            return n.to_string();
        }
        self.msg_names.get(&kind).cloned().unwrap_or_else(|| format!("msg{}", kind.0))
    }

    /// Validate every site FSA plus protocol-level properties.
    ///
    /// Protocol-level checks: at least one site; every initial message
    /// addresses a real site; and the protocol has at least two phases
    /// (the paper: 1PC exists but "is inadequate because it does not allow
    /// an unilateral abort"; every protocol in the design space studied has
    /// two or more phases — we still permit constructing 1PC for the
    /// catalog, so this check is only run by [`Protocol::validate_strict`]).
    pub fn validate(&self) -> Result<(), ProtocolError> {
        if self.fsas.is_empty() {
            return Err(ProtocolError::NoSites);
        }
        for (i, fsa) in self.fsas.iter().enumerate() {
            fsa.validate(SiteId(i as u32), self.n_sites())?;
        }
        for m in &self.initial_msgs {
            if !m.dst.is_client() && m.dst.index() >= self.n_sites() {
                return Err(ProtocolError::BadSiteRef { site: m.src, referenced: m.dst });
            }
        }
        if let Some(q) = self.quorum {
            // 2f+1 acceptors in the contiguous tail, at least one
            // participant in front of them.
            if q.acceptors_from == 0
                || q.acceptors_from >= self.n_sites()
                || self.n_sites() - q.acceptors_from != 2 * q.f + 1
            {
                return Err(ProtocolError::BadQuorumSpec {
                    f: q.f,
                    acceptors_from: q.acceptors_from,
                    n_sites: self.n_sites(),
                });
            }
        }
        Ok(())
    }

    /// [`Protocol::validate`] plus the two-phase minimum.
    pub fn validate_strict(&self) -> Result<(), ProtocolError> {
        self.validate()?;
        let phases = self.phase_count();
        if phases < 2 {
            return Err(ProtocolError::TooFewPhases { phases });
        }
        Ok(())
    }

    /// Number of phases: a phase occurs when all sites executing the
    /// protocol make a state transition, so the phase count is the largest
    /// number of transitions any site can make.
    pub fn phase_count(&self) -> u32 {
        self.fsas.iter().map(Fsa::max_depth).max().unwrap_or(0)
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}; {} sites; {} phases]",
            self.name,
            self.paradigm,
            self.n_sites(),
            self.phase_count()
        )?;
        for fsa in &self.fsas {
            write!(f, "{fsa}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsa::{Consume, Envelope, FsaBuilder, StateClass, Vote};

    fn two_site_protocol() -> Protocol {
        let coord = SiteId(0);
        let slave = SiteId(1);

        let mut cb = FsaBuilder::new("coordinator");
        let q1 = cb.state("q1", StateClass::Initial);
        let w1 = cb.state("w1", StateClass::Wait);
        let a1 = cb.state("a1", StateClass::Aborted);
        let c1 = cb.state("c1", StateClass::Committed);
        cb.transition(
            q1,
            w1,
            Consume::one(SiteId::CLIENT, MsgKind::REQUEST),
            vec![Envelope::new(slave, MsgKind::XACT)],
            None,
            "request / xact",
        );
        cb.transition(
            w1,
            c1,
            Consume::All(vec![(slave, MsgKind::YES)]),
            vec![Envelope::new(slave, MsgKind::COMMIT)],
            Some(Vote::Yes),
            "yes / commit",
        );
        cb.transition(
            w1,
            a1,
            Consume::Any(vec![(slave, MsgKind::NO)]),
            vec![Envelope::new(slave, MsgKind::ABORT)],
            None,
            "no / abort",
        );
        cb.transition(
            w1,
            a1,
            Consume::Spontaneous,
            vec![Envelope::new(slave, MsgKind::ABORT)],
            Some(Vote::No),
            "(no1) / abort",
        );

        let mut sb = FsaBuilder::new("slave");
        let q2 = sb.state("q2", StateClass::Initial);
        let w2 = sb.state("w2", StateClass::Wait);
        let a2 = sb.state("a2", StateClass::Aborted);
        let c2 = sb.state("c2", StateClass::Committed);
        sb.transition(
            q2,
            w2,
            Consume::one(coord, MsgKind::XACT),
            vec![Envelope::new(coord, MsgKind::YES)],
            Some(Vote::Yes),
            "xact / yes",
        );
        sb.transition(
            q2,
            a2,
            Consume::one(coord, MsgKind::XACT),
            vec![Envelope::new(coord, MsgKind::NO)],
            Some(Vote::No),
            "xact / no",
        );
        sb.transition(w2, c2, Consume::one(coord, MsgKind::COMMIT), vec![], None, "commit /");
        sb.transition(w2, a2, Consume::one(coord, MsgKind::ABORT), vec![], None, "abort /");

        Protocol::new(
            "test 2PC (n=2)",
            Paradigm::CentralSite,
            vec![cb.build(), sb.build()],
            vec![InitialMsg { src: SiteId::CLIENT, dst: coord, kind: MsgKind::REQUEST }],
        )
    }

    #[test]
    fn validates_and_counts_phases() {
        let p = two_site_protocol();
        p.validate_strict().unwrap();
        assert_eq!(p.n_sites(), 2);
        assert_eq!(p.phase_count(), 2);
    }

    #[test]
    fn empty_protocol_rejected() {
        let p = Protocol::new("empty", Paradigm::Custom, vec![], vec![]);
        assert_eq!(p.validate(), Err(ProtocolError::NoSites));
    }

    #[test]
    fn msg_names_resolve() {
        let mut p = two_site_protocol();
        assert_eq!(p.msg_name(MsgKind::XACT), "xact");
        let custom = MsgKind(40);
        assert_eq!(p.msg_name(custom), "msg40");
        p.name_msg(custom, "ballot");
        assert_eq!(p.msg_name(custom), "ballot");
    }

    #[test]
    fn display_renders_all_sites() {
        let p = two_site_protocol();
        let s = p.to_string();
        assert!(s.contains("coordinator"));
        assert!(s.contains("slave"));
        assert!(s.contains("2 phases"));
    }

    #[test]
    fn initial_msg_to_unknown_site_rejected() {
        let mut p = two_site_protocol();
        p.initial_msgs.push(InitialMsg {
            src: SiteId::CLIENT,
            dst: SiteId(5),
            kind: MsgKind::XACT,
        });
        assert!(matches!(p.validate(), Err(ProtocolError::BadSiteRef { .. })));
    }

    #[test]
    fn sites_iterator() {
        let p = two_site_protocol();
        let v: Vec<_> = p.sites().collect();
        assert_eq!(v, vec![SiteId(0), SiteId(1)]);
    }
}
