//! Per-local-state analysis derived from the reachable state graph:
//! occupancy, concurrency sets, and committable states.
//!
//! * The **concurrency set** of local state `s` of site `i` is the set of
//!   local states that *other* sites may occupy concurrently with `i` being
//!   in `s` — i.e. all `(j, t)` with `j ≠ i` such that some reachable
//!   global state has site `i` in `s` and site `j` in `t` (paper
//!   §"Comments on reachable state graphs").
//!
//! * A local state is **committable** if occupancy of that state by any
//!   site implies that all sites have voted yes on committing the
//!   transaction; a state that is not committable is *noncommittable*
//!   (paper §"Committable States"). "To call noncommittable states
//!   abortable would be misleading": a transaction not yet in a final
//!   commit state at any site can still be aborted.
//!
//! Whether a site "has voted yes" in a global state is derived from the
//! [`Vote`] tags on transitions: a local state `t` is *yes-voted* iff every
//! FSA path from the initial state to `t` passes a `Vote::Yes` transition.
//! This is a per-state (path-insensitive) approximation: a site that voted
//! yes and later aborted is treated as not-yes-voted in its abort state.
//! The approximation is conservative for the nonblocking theorem — it can
//! only shrink the committable set, never grow it — and it is exact for
//! every protocol in the catalog.
//!
//! ## Fused, bitset-backed computation
//!
//! All facts are stored as packed bitsets over *(site, state) slots* (see
//! [`crate::facts`](self)) and are accumulated **inside** the reachability
//! BFS via the `StateFolder` hook in [`crate::reach`], not in a post-hoc
//! pass over the finished node vector. Queries like [`cs_has_commit`] are
//! word-wise intersections against a precomputed commit mask instead of
//! `BTreeSet` scans. The `BTreeSet` form of a concurrency set is still
//! available through [`concurrency_set`] and is materialized lazily, once,
//! on first request.
//!
//! With [`ReachOptions::stream`] set, [`Analysis::build_with`] *streams*
//! the fold: node payloads are retired as soon as their BFS level has been
//! expanded, only the current frontier stays resident, and no
//! [`ReachGraph`] is kept — [`Analysis::graph`] returns `None`. Graph
//! consumers (DOT rendering, termination verification, transition-lead
//! measurement) need the default retaining mode.
//!
//! [`Vote`]: crate::fsa::Vote
//! [`cs_has_commit`]: Analysis::cs_has_commit
//! [`concurrency_set`]: Analysis::concurrency_set

use std::collections::BTreeSet;
use std::sync::OnceLock;

use crate::error::ProtocolError;
use crate::facts::{
    bit_clear, bit_get, bit_set, first_common, intersects, iter_ones, ConcurrencyFacts, SlotMap,
};
use crate::fsa::StateClass;
use crate::ids::{SiteId, StateId};
use crate::protocol::Protocol;
use crate::reach::{self, NodeId, ReachGraph, ReachOptions, StateFolder, StreamStats};

/// A concurrency-set member serving as a theorem witness: the occupied
/// `(site, state)` pair that puts a commit or abort state in the set.
pub type Witness = (SiteId, StateId);

/// All per-state facts the theorem and termination rules need, accumulated
/// in one fused pass during reachable-graph construction.
pub struct Analysis {
    n_sites: usize,
    slots: SlotMap,
    /// Bitset row width in 64-bit words.
    words: usize,
    /// Row-major concurrency bits, own-site slots already masked out:
    /// `cs[slot * words ..][..words]` = concurrency set of `slot`.
    cs: Vec<u64>,
    /// `occupied` bit per slot: appears in some reachable global state.
    occupied: Vec<u64>,
    /// `yes_voted` bit per slot: every FSA path casts a yes vote.
    yes_voted: Vec<u64>,
    /// `committable` bit per slot (unoccupied states keep their vacuous
    /// default of set).
    committable: Vec<u64>,
    /// Slots whose class is [`StateClass::Committed`] / [`StateClass::Aborted`].
    commit_mask: Vec<u64>,
    abort_mask: Vec<u64>,
    /// `classes[i][s]` = state class, for commit/abort queries.
    classes: Vec<Vec<StateClass>>,
    /// Lazily materialized `BTreeSet` view of each slot's concurrency row.
    cs_views: Vec<OnceLock<BTreeSet<(SiteId, StateId)>>>,
    /// The retained graph, unless the analysis was streamed.
    graph: Option<ReachGraph>,
    /// Streaming statistics, when the analysis was streamed.
    stream: Option<StreamStats>,
}

impl Analysis {
    /// Build the reachable state graph and run the full analysis.
    pub fn build(protocol: &Protocol) -> Result<Self, ProtocolError> {
        Self::build_with(protocol, ReachOptions::default())
    }

    /// As [`Analysis::build`] with explicit graph options.
    ///
    /// The analysis facts are folded *during* construction (per-worker
    /// accumulators OR-merged at each BFS level barrier — bit-identical
    /// for any thread count). With [`ReachOptions::stream`] set, node
    /// payloads are retired level by level and no graph is retained.
    pub fn build_with(protocol: &Protocol, opts: ReachOptions) -> Result<Self, ProtocolError> {
        let mut facts = ConcurrencyFacts::new(protocol);
        if opts.stream {
            let stats = reach::fold_reachable(protocol, opts, &mut facts)?;
            Ok(Self::finish(protocol, facts, None, Some(stats)))
        } else {
            let graph = ReachGraph::build_with_folder(protocol, opts, &mut facts)?;
            Ok(Self::finish(protocol, facts, Some(graph), None))
        }
    }

    /// Run the analysis post hoc over an already-built graph — the
    /// reference path the fused fold is property-tested against (and the
    /// baseline the `analysis_throughput` bench compares with).
    pub fn from_graph(protocol: &Protocol, graph: ReachGraph) -> Self {
        let mut facts = ConcurrencyFacts::new(protocol);
        for id in 0..graph.node_count() as NodeId {
            facts.fold(graph.node(id));
        }
        Self::finish(protocol, facts, Some(graph), None)
    }

    /// Turn the raw accumulator into the queryable analysis: build the
    /// class masks, mask each site's own slots out of its rows, and invert
    /// noncommittability.
    fn finish(
        protocol: &Protocol,
        facts: ConcurrencyFacts,
        graph: Option<ReachGraph>,
        stream: Option<StreamStats>,
    ) -> Self {
        let (slots, yes_voted, mut cs, occupied, noncommittable, _folded) = facts.into_parts();
        let words = slots.words();
        let total = slots.total();

        let classes: Vec<Vec<StateClass>> =
            protocol.fsas().iter().map(|f| f.states().iter().map(|s| s.class).collect()).collect();

        let mut commit_mask = vec![0u64; words];
        let mut abort_mask = vec![0u64; words];
        for (i, fsa) in protocol.fsas().iter().enumerate() {
            for (s, info) in fsa.states().iter().enumerate() {
                let slot = slots.slot(SiteId(i as u32), StateId(s as u32));
                match info.class {
                    StateClass::Committed => bit_set(&mut commit_mask, slot),
                    StateClass::Aborted => bit_set(&mut abort_mask, slot),
                    _ => {}
                }
            }
        }

        // The accumulator records full co-occupancy (a state is trivially
        // concurrent with its own site); the paper's C(s) ranges over
        // *other* sites only, so clear each site's slot range from its own
        // rows once, here, rather than branching in the hot fold.
        for i in 0..protocol.n_sites() {
            let range = slots.site_range(SiteId(i as u32));
            for slot in range.clone() {
                let row = &mut cs[slot as usize * words..(slot as usize + 1) * words];
                for b in range.clone() {
                    bit_clear(row, b);
                }
            }
        }

        let mut committable: Vec<u64> = noncommittable.iter().map(|&w| !w).collect();
        let tail = total % 64;
        if tail != 0 {
            *committable.last_mut().expect("at least one word") &= (1u64 << tail) - 1;
        }

        Self {
            n_sites: protocol.n_sites(),
            words,
            cs,
            occupied,
            yes_voted,
            committable,
            commit_mask,
            abort_mask,
            classes,
            cs_views: (0..total).map(|_| OnceLock::new()).collect(),
            graph,
            stream,
            slots,
        }
    }

    /// One slot's concurrency row.
    #[inline]
    fn cs_row(&self, slot: u32) -> &[u64] {
        &self.cs[slot as usize * self.words..(slot as usize + 1) * self.words]
    }

    /// The underlying reachable state graph, unless this analysis was
    /// built in streaming mode (in which case no graph was retained).
    pub fn graph(&self) -> Option<&ReachGraph> {
        self.graph.as_ref()
    }

    /// Streaming statistics, when this analysis was built with
    /// [`ReachOptions::stream`].
    pub fn stream_stats(&self) -> Option<&StreamStats> {
        self.stream.as_ref()
    }

    /// Number of sites of the analyzed protocol.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// The concurrency set of `(site, state)` as `(other_site, state)` pairs.
    ///
    /// Materialized lazily from the bitset row on first request and cached;
    /// queries that only need membership or witnesses should prefer
    /// [`concurrency_slots`](Self::concurrency_slots),
    /// [`cs_has_commit`](Self::cs_has_commit) /
    /// [`cs_has_abort`](Self::cs_has_abort), or
    /// [`cs_witnesses`](Self::cs_witnesses), which never allocate.
    pub fn concurrency_set(&self, site: SiteId, s: StateId) -> &BTreeSet<(SiteId, StateId)> {
        let slot = self.slots.slot(site, s);
        self.cs_views[slot as usize]
            .get_or_init(|| iter_ones(self.cs_row(slot)).map(|b| self.slots.unslot(b)).collect())
    }

    /// Iterate the concurrency set of `(site, s)` in ascending
    /// `(SiteId, StateId)` order straight off the bitset row, without
    /// materializing a `BTreeSet`.
    pub fn concurrency_slots(
        &self,
        site: SiteId,
        s: StateId,
    ) -> impl Iterator<Item = (SiteId, StateId)> + '_ {
        iter_ones(self.cs_row(self.slots.slot(site, s))).map(move |b| self.slots.unslot(b))
    }

    /// True if the state occurs in some reachable global state.
    pub fn occupied(&self, site: SiteId, s: StateId) -> bool {
        bit_get(&self.occupied, self.slots.slot(site, s))
    }

    /// True if every path to this state casts a yes vote.
    pub fn yes_voted(&self, site: SiteId, s: StateId) -> bool {
        bit_get(&self.yes_voted, self.slots.slot(site, s))
    }

    /// True if occupancy of this state implies all sites voted yes.
    ///
    /// Meaningful only for occupied states (unoccupied states return their
    /// vacuous default of `true`).
    pub fn committable(&self, site: SiteId, s: StateId) -> bool {
        bit_get(&self.committable, self.slots.slot(site, s))
    }

    /// Class of a local state.
    pub fn class_of(&self, site: SiteId, s: StateId) -> StateClass {
        self.classes[site.index()][s.index()]
    }

    /// Does the concurrency set of `(site, s)` contain a commit state?
    /// One word-wise intersection against the commit mask.
    pub fn cs_has_commit(&self, site: SiteId, s: StateId) -> bool {
        intersects(self.cs_row(self.slots.slot(site, s)), &self.commit_mask)
    }

    /// Does the concurrency set of `(site, s)` contain an abort state?
    /// One word-wise intersection against the abort mask.
    pub fn cs_has_abort(&self, site: SiteId, s: StateId) -> bool {
        intersects(self.cs_row(self.slots.slot(site, s)), &self.abort_mask)
    }

    /// Both theorem witnesses of `(site, s)` in a single pass over its
    /// concurrency row: the minimum commit-state member and the minimum
    /// abort-state member (each in `(SiteId, StateId)` order — the same
    /// elements a linear scan of [`concurrency_set`](Self::concurrency_set)
    /// would find first).
    pub fn cs_witnesses(&self, site: SiteId, s: StateId) -> (Option<Witness>, Option<Witness>) {
        let row = self.cs_row(self.slots.slot(site, s));
        let commit = first_common(row, &self.commit_mask).map(|b| self.slots.unslot(b));
        let abort = first_common(row, &self.abort_mask).map(|b| self.slots.unslot(b));
        (commit, abort)
    }

    /// The concurrency set projected to state *classes* — the form the
    /// paper's tables use (e.g. `CS(w) = {q, w, a, c}`).
    pub fn concurrency_classes(&self, site: SiteId, s: StateId) -> BTreeSet<StateClass> {
        self.concurrency_slots(site, s).map(|(j, t)| self.class_of(j, t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{central_2pc, central_3pc, decentralized_2pc, decentralized_3pc};

    fn classes_of(
        a: &Analysis,
        site: u32,
        name_to_id: &dyn Fn(&str) -> StateId,
        name: &str,
    ) -> BTreeSet<StateClass> {
        a.concurrency_classes(SiteId(site), name_to_id(name))
    }

    #[test]
    fn decentralized_2pc_concurrency_sets_match_paper_table() {
        // Paper: CS(q)={q,w,a}, CS(w)={q,w,a,c}, CS(a)={q,w,a}, CS(c)={w,c}.
        let p = decentralized_2pc(2);
        let a = Analysis::build(&p).unwrap();
        let fsa = p.fsa(SiteId(0));
        let id = |n: &str| fsa.state_by_name(n).unwrap();
        use StateClass::*;
        assert_eq!(classes_of(&a, 0, &id, "q"), BTreeSet::from([Initial, Wait, Aborted]));
        assert_eq!(
            classes_of(&a, 0, &id, "w"),
            BTreeSet::from([Initial, Wait, Aborted, Committed])
        );
        assert_eq!(classes_of(&a, 0, &id, "a"), BTreeSet::from([Initial, Wait, Aborted]));
        assert_eq!(classes_of(&a, 0, &id, "c"), BTreeSet::from([Wait, Committed]));
    }

    #[test]
    fn central_2pc_slave_wait_sees_both_outcomes() {
        let p = central_2pc(2);
        let a = Analysis::build(&p).unwrap();
        let slave = SiteId(1);
        let w = p.fsa(slave).state_by_name("w").unwrap();
        assert!(a.cs_has_commit(slave, w));
        assert!(a.cs_has_abort(slave, w));
        assert!(!a.committable(slave, w));
    }

    #[test]
    fn central_2pc_coordinator_wait_is_safe() {
        // The coordinator's wait state never co-exists with a slave commit:
        // slaves commit only after the coordinator has left w1.
        let p = central_2pc(3);
        let a = Analysis::build(&p).unwrap();
        let w1 = p.fsa(SiteId(0)).state_by_name("w1").unwrap();
        assert!(!a.cs_has_commit(SiteId(0), w1));
        assert!(a.cs_has_abort(SiteId(0), w1), "slaves can unilaterally abort");
    }

    #[test]
    fn committable_states_2pc_vs_3pc() {
        // "A blocking protocol usually has only one committable state,
        // while nonblocking protocols always have more than one."
        let p2 = central_2pc(3);
        let a2 = Analysis::build(&p2).unwrap();
        for site in p2.sites() {
            let fsa = p2.fsa(site);
            let committable: Vec<_> = (0..fsa.state_count())
                .map(|i| StateId(i as u32))
                .filter(|&s| a2.occupied(site, s) && a2.committable(site, s))
                .collect();
            assert_eq!(committable.len(), 1, "2PC {site}: only c is committable");
            assert_eq!(fsa.state(committable[0]).class, StateClass::Committed);
        }

        let p3 = central_3pc(3);
        let a3 = Analysis::build(&p3).unwrap();
        for site in p3.sites() {
            let fsa = p3.fsa(site);
            let committable: BTreeSet<_> = (0..fsa.state_count())
                .map(|i| StateId(i as u32))
                .filter(|&s| a3.occupied(site, s) && a3.committable(site, s))
                .map(|s| fsa.state(s).class)
                .collect();
            assert_eq!(
                committable,
                BTreeSet::from([StateClass::Prepared, StateClass::Committed]),
                "3PC {site}: p and c are committable"
            );
        }
    }

    #[test]
    fn three_pc_prepared_never_concurrent_with_abort() {
        for p in [central_3pc(3), decentralized_3pc(3)] {
            let a = Analysis::build(&p).unwrap();
            for site in p.sites() {
                if let Some(ps) = p.fsa(site).state_of_class(StateClass::Prepared) {
                    assert!(
                        !a.cs_has_abort(site, ps),
                        "{}: CS(p) must not contain an abort state",
                        p.name
                    );
                }
            }
        }
    }

    #[test]
    fn three_pc_prepared_commit_concurrency_depends_on_role() {
        // A decentralized peer in p can co-exist with a committed peer
        // (the other peer may have collected all prepares first), and so
        // can a central-site *slave* in p (the coordinator may have
        // committed). The central-site *coordinator* in p1 cannot: slaves
        // commit only after the coordinator has entered c1.
        let pd = decentralized_3pc(3);
        let ad = Analysis::build(&pd).unwrap();
        let pd0 = pd.fsa(SiteId(0)).state_of_class(StateClass::Prepared).unwrap();
        assert!(ad.cs_has_commit(SiteId(0), pd0));

        let pc = central_3pc(3);
        let ac = Analysis::build(&pc).unwrap();
        let slave_p = pc.fsa(SiteId(1)).state_of_class(StateClass::Prepared).unwrap();
        assert!(ac.cs_has_commit(SiteId(1), slave_p));
        let coord_p = pc.fsa(SiteId(0)).state_of_class(StateClass::Prepared).unwrap();
        assert!(!ac.cs_has_commit(SiteId(0), coord_p));
    }

    #[test]
    fn three_pc_wait_never_concurrent_with_commit() {
        for p in [central_3pc(3), decentralized_3pc(3)] {
            let a = Analysis::build(&p).unwrap();
            for site in p.sites() {
                let ws = p.fsa(site).state_of_class(StateClass::Wait).unwrap();
                assert!(
                    !a.cs_has_commit(site, ws),
                    "{}: CS(w) must not contain a commit state",
                    p.name
                );
            }
        }
    }

    #[test]
    fn yes_voted_analysis() {
        let p = central_2pc(2);
        let a = Analysis::build(&p).unwrap();
        let slave = SiteId(1);
        let fsa = p.fsa(slave);
        let id = |n: &str| fsa.state_by_name(n).unwrap();
        assert!(!a.yes_voted(slave, id("q")));
        assert!(a.yes_voted(slave, id("w")));
        assert!(a.yes_voted(slave, id("c")));
        // a is reachable via the no-vote, so it is not yes-voted.
        assert!(!a.yes_voted(slave, id("a")));
    }

    #[test]
    fn all_states_occupied_in_catalog() {
        for p in crate::protocols::catalog(3) {
            let a = Analysis::build(&p).unwrap();
            for site in p.sites() {
                for i in 0..p.fsa(site).state_count() {
                    assert!(
                        a.occupied(site, StateId(i as u32)),
                        "{} {site} state {i} unoccupied",
                        p.name
                    );
                }
            }
        }
    }

    #[test]
    fn concurrency_set_excludes_own_site() {
        let p = decentralized_2pc(3);
        let a = Analysis::build(&p).unwrap();
        let s0 = SiteId(0);
        for i in 0..p.fsa(s0).state_count() {
            for &(j, _) in a.concurrency_set(s0, StateId(i as u32)) {
                assert_ne!(j, s0);
            }
        }
    }

    #[test]
    fn lazy_set_view_matches_slot_iterator_and_witnesses() {
        let p = central_3pc(3);
        let a = Analysis::build(&p).unwrap();
        for site in p.sites() {
            for i in 0..p.fsa(site).state_count() {
                let s = StateId(i as u32);
                let set = a.concurrency_set(site, s);
                let from_slots: BTreeSet<_> = a.concurrency_slots(site, s).collect();
                assert_eq!(*set, from_slots);
                let (commit, abort) = a.cs_witnesses(site, s);
                let want_commit =
                    set.iter().find(|&&(j, t)| a.class_of(j, t) == StateClass::Committed).copied();
                let want_abort =
                    set.iter().find(|&&(j, t)| a.class_of(j, t) == StateClass::Aborted).copied();
                assert_eq!(commit, want_commit);
                assert_eq!(abort, want_abort);
                assert_eq!(a.cs_has_commit(site, s), commit.is_some());
                assert_eq!(a.cs_has_abort(site, s), abort.is_some());
            }
        }
    }

    #[test]
    fn streaming_build_retains_no_graph_but_same_facts() {
        let p = central_2pc(3);
        let retained = Analysis::build(&p).unwrap();
        let streamed =
            Analysis::build_with(&p, ReachOptions::default().with_streaming(true)).unwrap();
        assert!(retained.graph().is_some() && retained.stream_stats().is_none());
        assert!(streamed.graph().is_none());
        let stats = streamed.stream_stats().unwrap();
        assert_eq!(stats.distinct_states, retained.graph().unwrap().node_count());
        assert!(stats.levels > 1 && stats.peak_resident >= 1);
        for site in p.sites() {
            for i in 0..p.fsa(site).state_count() {
                let s = StateId(i as u32);
                assert_eq!(retained.concurrency_set(site, s), streamed.concurrency_set(site, s));
                assert_eq!(retained.occupied(site, s), streamed.occupied(site, s));
                assert_eq!(retained.committable(site, s), streamed.committable(site, s));
                assert_eq!(retained.yes_voted(site, s), streamed.yes_voted(site, s));
            }
        }
    }
}
