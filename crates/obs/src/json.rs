//! A hand-rolled JSON layer: string escaping, an object/array builder,
//! a strict well-formedness validator, and a [`Value`] parser for the
//! read side ([`crate::analyze`] parses traces back through it).
//!
//! The workspace takes no external dependencies, so the exporters and the
//! machine-readable CLI output (`--json`) build their JSON through these
//! helpers. Key order is the insertion order — callers keep it fixed so
//! output is deterministic and diffable.

/// Escape `s` for inclusion in a JSON string literal (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Quote and escape `s` as a JSON string literal.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Incremental JSON object builder; fields appear in call order.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(&string(key));
        self.buf.push(':');
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.push_key(key);
        self.buf.push_str(&string(value));
        self
    }

    /// Add an unsigned integer field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.push_key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Add a float field (rendered with Rust's shortest-roundtrip
    /// formatting, which is deterministic).
    pub fn float(mut self, key: &str, value: f64) -> Self {
        self.push_key(key);
        if value.is_finite() {
            self.buf.push_str(&value.to_string());
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.push_key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Add a field whose value is already-encoded JSON.
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.push_key(key);
        self.buf.push_str(json);
        self
    }

    /// Finish: the complete `{...}` text.
    pub fn build(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Encode an iterator of already-encoded JSON values as an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// A parsed JSON value. Numbers keep their source text (traces carry
/// `u64` timestamps and byte counts that a float round-trip could
/// corrupt); objects keep their key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its exact source text.
    Num(String),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object (`None` for non-objects and misses).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a plain decimal number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Strictly validate that `input` is one well-formed JSON value (with
/// optional surrounding whitespace). Returns the byte offset and a
/// message on failure. Used by the trace tests and the CI smoke step to
/// check every exported line without an external JSON library.
pub fn validate(input: &str) -> Result<(), String> {
    parse(input).map(|_| ())
}

/// Parse `input` as one well-formed JSON value (the same strict grammar
/// as [`validate`]). Returns the byte offset and a message on failure.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected {lit:?}"))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let mut code = 0u32;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => {
                                        code = code * 16 + (c as char).to_digit(16).unwrap_or(0);
                                        self.pos += 1;
                                    }
                                    _ => return self.err("bad \\u escape"),
                                }
                            }
                            // Unpaired surrogates can't form a char; our own
                            // escaper never emits them, so map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return self.err("raw control character in string"),
                Some(_) => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                        self.pos += 1;
                    }
                    // The input is a &str, so slicing at non-escape byte
                    // boundaries stays valid UTF-8.
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let ds = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            if p.pos == ds {
                p.err("expected digits")
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            digits(self)?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
        Ok(Value::Num(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("hi"), "\"hi\"");
    }

    #[test]
    fn builder_orders_fields() {
        let j = Obj::new().num("t", 5).str("kind", "crash").bool("ok", true).build();
        assert_eq!(j, "{\"t\":5,\"kind\":\"crash\",\"ok\":true}");
        validate(&j).unwrap();
    }

    #[test]
    fn arrays_and_raw_nest() {
        let inner = Obj::new().num("x", 1).build();
        let j = Obj::new().raw("items", &array([inner, "2".to_string()])).build();
        assert_eq!(j, "{\"items\":[{\"x\":1},2]}");
        validate(&j).unwrap();
    }

    #[test]
    fn validator_accepts_valid() {
        for ok in
            ["{}", "[]", "null", "-3.25e+2", "\"a\\u00e9b\"", " { \"a\" : [ 1 , true , { } ] } "]
        {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_invalid() {
        for bad in ["{", "{\"a\":}", "[1,]", "01x", "\"unterminated", "{} {}", "{\"a\" 1}"] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parser_builds_values() {
        let v = parse("{\"t\":5,\"kind\":\"msg-send\",\"ok\":true,\"x\":null}").unwrap();
        assert_eq!(v.get("t").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("msg-send"));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("x"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_decodes_escapes() {
        let v = parse("\"a\\\"b\\\\c\\nd\\u00e9\\u0001\"").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{e9}\u{1}"));
        // Round-trip through our own escaper.
        let text = "quote\" back\\slash \nnewline\ttab\u{1}ctl é";
        assert_eq!(parse(&string(text)).unwrap().as_str(), Some(text));
    }

    #[test]
    fn parser_keeps_u64_numbers_exact() {
        let big = u64::MAX;
        let v = parse(&format!("[{big},-2,3.5]")).unwrap();
        match &v {
            Value::Arr(items) => {
                assert_eq!(items[0].as_u64(), Some(big));
                assert_eq!(items[1], Value::Num("-2".to_string()));
                assert_eq!(items[1].as_u64(), None);
                assert_eq!(items[2], Value::Num("3.5".to_string()));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parser_preserves_object_key_order() {
        let v = parse("{\"z\":1,\"a\":2}").unwrap();
        match v {
            Value::Obj(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn float_formatting_is_plain() {
        let j = Obj::new().float("v", 2.5).float("bad", f64::NAN).build();
        assert_eq!(j, "{\"v\":2.5,\"bad\":null}");
        validate(&j).unwrap();
    }
}
