//! Substrate microbenchmarks: WAL append/recover throughput, CRC-32, and
//! the KV store's transactional operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbc_storage::crc32::crc32;
use nbc_storage::{KvStore, LogRecord, Wal};
use std::hint::black_box;

fn bench_wal_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_append");
    for &batch in &[100usize, 1000] {
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::new("progress_records", batch), &batch, |b, &n| {
            b.iter(|| {
                let mut wal = Wal::new();
                for i in 0..n as u64 {
                    wal.append(&LogRecord::Progress { txn: i, state: 1, class: 1 });
                }
                wal.sync();
                wal.len()
            })
        });
        g.bench_with_input(BenchmarkId::new("put_records_64b", batch), &batch, |b, &n| {
            let value = vec![0xAAu8; 64];
            b.iter(|| {
                let mut wal = Wal::new();
                for i in 0..n as u64 {
                    wal.append(&LogRecord::Put {
                        txn: i,
                        key: format!("key{i:08}").into_bytes(),
                        value: value.clone(),
                    });
                }
                wal.sync();
                wal.len()
            })
        });
    }
    g.finish();
}

fn bench_wal_recover(c: &mut Criterion) {
    let mut wal = Wal::new();
    for i in 0..5_000u64 {
        wal.append(&LogRecord::Put {
            txn: i % 50,
            key: format!("key{i:08}").into_bytes(),
            value: vec![0x55u8; 64],
        });
        if i % 50 == 49 {
            wal.append(&LogRecord::Decision { txn: i % 50, commit: i % 2 == 0 });
        }
    }
    wal.sync();
    let image = wal.crash_image();
    let mut g = c.benchmark_group("wal_recover");
    g.throughput(Throughput::Bytes(image.len() as u64));
    g.bench_function("decode_5k_records", |b| {
        b.iter(|| Wal::recover(black_box(&image)).unwrap().len())
    });
    g.bench_function("redo_5k_records", |b| {
        let records = Wal::recover(&image).unwrap();
        b.iter(|| KvStore::redo_from_log(black_box(&records)).len())
    });
    g.finish();
}

fn bench_crc32(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32");
    for &size in &[64usize, 4096] {
        let data = vec![0xC3u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| crc32(black_box(d)))
        });
    }
    g.finish();
}

fn bench_kv_txn(c: &mut Criterion) {
    let mut g = c.benchmark_group("kv_txn");
    g.throughput(Throughput::Elements(100));
    g.bench_function("stage_commit_100", |b| {
        b.iter(|| {
            let mut kv = KvStore::new();
            for i in 0..100u64 {
                kv.stage_put(1, format!("k{i}").into_bytes(), vec![0; 16]);
            }
            kv.commit(1);
            kv.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_wal_append, bench_wal_recover, bench_crc32, bench_kv_txn);
criterion_main!(benches);
