//! The nonblocking fully decentralized three-phase commit protocol (paper
//! figure "A nonblocking decentralized 3PC protocol").
//!
//! Decentralized 2PC with a buffer round: after a site has collected a yes
//! vote from every peer it broadcasts `prepare` and enters the buffer state
//! `p`; it commits once it has received `prepare` from every peer. Each
//! round is a full message interchange, so the protocol remains synchronous
//! within one state transition.

use crate::fsa::{Consume, Envelope, FsaBuilder, StateClass, Vote};
use crate::ids::{MsgKind, SiteId};
use crate::protocol::{InitialMsg, Paradigm, Protocol};

/// Build decentralized 3PC for `n >= 2` peer sites.
///
/// # Panics
/// Panics if `n < 2`.
pub fn decentralized_3pc(n: usize) -> Protocol {
    assert!(n >= 2, "a distributed commit protocol needs at least 2 sites");
    let everyone: Vec<SiteId> = (0..n as u32).map(SiteId).collect();

    let fsas = everyone
        .iter()
        .map(|_| {
            let mut b = FsaBuilder::new("peer");
            let qi = b.state("q", StateClass::Initial);
            let wi = b.state("w", StateClass::Wait);
            let ai = b.state("a", StateClass::Aborted);
            let pi = b.state("p", StateClass::Prepared);
            let ci = b.state("c", StateClass::Committed);
            b.transition(
                qi,
                wi,
                Consume::one(SiteId::CLIENT, MsgKind::XACT),
                everyone.iter().map(|&s| Envelope::new(s, MsgKind::YES)).collect(),
                Some(Vote::Yes),
                "xact / yes_i1..yes_in",
            );
            b.transition(
                qi,
                ai,
                Consume::one(SiteId::CLIENT, MsgKind::XACT),
                everyone.iter().map(|&s| Envelope::new(s, MsgKind::NO)).collect(),
                Some(Vote::No),
                "xact / no_i1..no_in",
            );
            b.transition(
                wi,
                pi,
                Consume::All(everyone.iter().map(|&s| (s, MsgKind::YES)).collect()),
                everyone.iter().map(|&s| Envelope::new(s, MsgKind::PREPARE)).collect(),
                None,
                "yes_1i..yes_ni / prepare_i1..prepare_in",
            );
            b.transition(
                wi,
                ai,
                Consume::Any(everyone.iter().map(|&s| (s, MsgKind::NO)).collect()),
                vec![],
                None,
                "no_ji /",
            );
            b.transition(
                pi,
                ci,
                Consume::All(everyone.iter().map(|&s| (s, MsgKind::PREPARE)).collect()),
                vec![],
                None,
                "prepare_1i..prepare_ni /",
            );
            b.build()
        })
        .collect();

    Protocol::new(
        format!("decentralized 3PC (n={n})"),
        Paradigm::Decentralized,
        fsas,
        everyone
            .iter()
            .map(|&s| InitialMsg { src: SiteId::CLIENT, dst: s, kind: MsgKind::XACT })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_figure() {
        let p = decentralized_3pc(3);
        p.validate_strict().unwrap();
        for site in p.sites() {
            let fsa = p.fsa(site);
            assert_eq!(fsa.state_count(), 5);
            assert_eq!(fsa.transitions().len(), 5);
        }
    }

    #[test]
    fn three_phases() {
        assert_eq!(decentralized_3pc(4).phase_count(), 3);
    }

    #[test]
    fn prepare_round_is_a_full_interchange() {
        let p = decentralized_3pc(3);
        let fsa = p.fsa(SiteId(2));
        let w = fsa.state_of_class(StateClass::Wait).unwrap();
        let prep_t = fsa
            .outgoing(w)
            .map(|(_, t)| t)
            .find(|t| fsa.state(t.to).class == StateClass::Prepared)
            .unwrap();
        assert_eq!(prep_t.emit.len(), 3, "prepare broadcast to all");
        let pi = fsa.state_of_class(StateClass::Prepared).unwrap();
        let (_, commit_t) = fsa.outgoing(pi).next().unwrap();
        match &commit_t.consume {
            Consume::All(v) => assert_eq!(v.len(), 3, "prepare from all"),
            other => panic!("expected All, got {other:?}"),
        }
    }

    #[test]
    fn no_exit_from_prepared_except_commit() {
        let p = decentralized_3pc(4);
        for site in p.sites() {
            let fsa = p.fsa(site);
            let pi = fsa.state_of_class(StateClass::Prepared).unwrap();
            let exits: Vec<_> = fsa.outgoing(pi).collect();
            assert_eq!(exits.len(), 1);
            assert!(fsa.is_commit(exits[0].1.to));
        }
    }
}
