//! Minimal fixed-width text tables for experiment output.

/// A text table with a header row.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = Table::new(["proto", "n", "msgs"]);
        t.row(["central 2PC", "3", "6"]);
        t.row(["3PC", "10", "45"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("proto"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("central 2PC"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
