//! Error types for protocol construction and analysis.

use std::fmt;

use crate::ids::{SiteId, StateId};

/// Errors raised while validating or analyzing a protocol.
///
/// Variant fields name the offending site/state; they are self-describing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ProtocolError {
    /// A transition references a state id outside the FSA's state table.
    BadStateRef { site: SiteId, state: StateId },
    /// A message names a destination site outside the protocol instance.
    BadSiteRef { site: SiteId, referenced: SiteId },
    /// The state diagram contains a cycle; the paper requires commit
    /// protocol FSAs to be acyclic.
    Cyclic { site: SiteId },
    /// A final (commit or abort) state has an outgoing transition; commit
    /// and abort are irreversible.
    FinalStateHasExit { site: SiteId, state: StateId },
    /// A reachable non-final local state has no outgoing transition, so the
    /// site could get stuck even without failures.
    StrandedState { site: SiteId, state: StateId },
    /// The protocol has fewer than two phases; the paper observes that
    /// every (unilateral-abort) commit protocol has at least two.
    TooFewPhases { phases: u32 },
    /// An FSA has no states or no initial state.
    EmptyFsa { site: SiteId },
    /// A protocol must have at least one participating site.
    NoSites,
    /// A `Consume::All`/`Consume::Any` trigger lists no messages; the paper
    /// requires each transition to read a nonempty string of messages
    /// (spontaneous internal decisions use `Consume::Spontaneous`).
    EmptyTrigger { site: SiteId, state: StateId },
    /// A `Consume::Quorum` trigger is malformed: `k` is zero, exceeds the
    /// number of listed sources, or the source list contains duplicates
    /// (a quorum counts *distinct* respondents).
    BadQuorum { site: SiteId, state: StateId },
    /// A protocol's quorum spec is inconsistent with its site count: the
    /// acceptor tail must hold exactly `2f + 1` sites and leave at least
    /// one participant.
    BadQuorumSpec { f: usize, acceptors_from: usize, n_sites: usize },
    /// Reachable-state-graph construction exceeded the configured bound.
    GraphTooLarge { limit: usize },
    /// The FSA is not leveled (two paths from the initial state to the same
    /// state differ in length), so phase-synchronicity analysis by state
    /// depth is not defined for it.
    NotLeveled { site: SiteId, state: StateId },
    /// A message multiset's per-address count overflowed `u16` — an
    /// unchecked increment would silently wrap to 0 and corrupt the
    /// multiset.
    MsgOverflow { src: SiteId, dst: SiteId, kind: crate::ids::MsgKind },
    /// An external-memory spill or lookup failed at the I/O layer (disk
    /// full, temp dir unwritable). Carries the underlying error text —
    /// a `String` so the variant stays `Eq` like the rest.
    SpillIo { detail: String },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadStateRef { site, state } => {
                write!(f, "{site}: transition references unknown state {state:?}")
            }
            Self::BadSiteRef { site, referenced } => {
                write!(f, "{site}: message references unknown site {referenced}")
            }
            Self::Cyclic { site } => {
                write!(f, "{site}: state diagram is cyclic (must be acyclic)")
            }
            Self::FinalStateHasExit { site, state } => {
                write!(
                    f,
                    "{site}: final state {state:?} has an outgoing transition \
                     (commit/abort are irreversible)"
                )
            }
            Self::StrandedState { site, state } => {
                write!(f, "{site}: reachable non-final state {state:?} has no outgoing transition")
            }
            Self::TooFewPhases { phases } => {
                write!(f, "protocol has {phases} phase(s); at least 2 required")
            }
            Self::EmptyFsa { site } => write!(f, "{site}: FSA has no states"),
            Self::NoSites => write!(f, "protocol has no participating sites"),
            Self::EmptyTrigger { site, state } => {
                write!(f, "{site}: transition out of {state:?} consumes an empty message string")
            }
            Self::BadQuorum { site, state } => {
                write!(
                    f,
                    "{site}: quorum trigger out of {state:?} needs 1 <= k <= sources \
                     and distinct sources"
                )
            }
            Self::BadQuorumSpec { f: faults, acceptors_from, n_sites } => {
                write!(
                    f,
                    "quorum spec wants 2*{faults}+1 acceptors from site {acceptors_from} \
                     but the protocol has {n_sites} site(s)"
                )
            }
            Self::GraphTooLarge { limit } => {
                write!(f, "reachable state graph exceeds limit of {limit} global states")
            }
            Self::NotLeveled { site, state } => {
                write!(f, "{site}: state {state:?} is reachable along paths of different lengths")
            }
            Self::MsgOverflow { src, dst, kind } => {
                write!(
                    f,
                    "outstanding-message count overflow for {src}->{dst} kind {kind:?} \
                     (more than {} identical messages)",
                    u16::MAX
                )
            }
            Self::SpillIo { detail } => {
                write!(f, "external-memory spill I/O failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::Cyclic { site: SiteId(1) };
        assert!(e.to_string().contains("site1"));
        assert!(e.to_string().contains("cyclic"));

        let e = ProtocolError::GraphTooLarge { limit: 10 };
        assert!(e.to_string().contains("10"));

        let e = ProtocolError::TooFewPhases { phases: 1 };
        assert!(e.to_string().contains("at least 2"));
    }
}
