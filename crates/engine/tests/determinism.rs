//! Determinism: identical configurations must replay identically — the
//! property that makes every sweep and every regression test meaningful.

use nbc_core::protocols::catalog;
use nbc_core::Analysis;
use nbc_engine::{run_with, CrashPoint, CrashSpec, RunConfig, TerminationRule, TransitionProgress};
use nbc_simnet::LatencyModel;

fn configs(n: usize) -> Vec<RunConfig> {
    let mut out = vec![RunConfig::happy(n), RunConfig::one_no(n, 1)];
    let mut jitter = RunConfig::happy(n);
    jitter.latency = LatencyModel::uniform(1, 15, 42);
    out.push(jitter);
    let crash = RunConfig::happy(n).with_rule(TerminationRule::Cooperative).with_crash(CrashSpec {
        site: 0,
        point: CrashPoint::OnTransition { ordinal: 2, progress: TransitionProgress::AfterMsgs(1) },
        recover_at: Some(120),
    });
    out.push(crash);
    out
}

#[test]
fn identical_configs_replay_identically() {
    for p in catalog(3) {
        let a = Analysis::build(&p).unwrap();
        for cfg in configs(3) {
            let r1 = run_with(&p, &a, cfg.clone());
            let r2 = run_with(&p, &a, cfg.clone());
            assert_eq!(r1.outcomes, r2.outcomes, "{}", p.name);
            assert_eq!(r1.msgs_sent, r2.msgs_sent, "{}", p.name);
            assert_eq!(r1.finished_at, r2.finished_at, "{}", p.name);
            assert_eq!(r1.events, r2.events, "{}", p.name);
            assert_eq!(r1.consistent, r2.consistent, "{}", p.name);
        }
    }
}

#[test]
fn different_latency_seeds_may_differ_but_stay_correct() {
    let p = nbc_core::protocols::central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    for seed in 0..20u64 {
        let mut cfg = RunConfig::happy(3);
        cfg.latency = LatencyModel::uniform(1, 30, seed);
        let r = run_with(&p, &a, cfg);
        assert!(r.consistent, "seed {seed}: {r}");
        assert_eq!(r.decision(), Some(true), "seed {seed}: {r}");
    }
}

#[test]
fn trace_is_empty_unless_requested() {
    let p = nbc_core::protocols::central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let r = run_with(&p, &a, RunConfig::happy(3));
    assert!(r.trace.is_empty());

    let mut cfg = RunConfig::happy(3);
    cfg.record_trace = true;
    let r = run_with(&p, &a, cfg);
    assert!(!r.trace.is_empty());
    // The trace narrates the whole happy path in order: request, votes,
    // prepares, acks, commits.
    let joined = r.trace.join("\n");
    for needle in ["q1 -> w1", "xact", "yes", "prepare", "ack", "commit", "DECIDED COMMIT"] {
        assert!(joined.contains(needle), "missing {needle:?} in:\n{joined}");
    }
    // Timestamps are non-decreasing.
    let times: Vec<u64> =
        r.trace.iter().map(|l| l[2..l.find(' ').unwrap()].trim().parse().unwrap()).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
}

#[test]
fn trace_narrates_termination_and_recovery() {
    let p = nbc_core::protocols::central_3pc(3);
    let a = Analysis::build(&p).unwrap();
    let mut cfg = RunConfig::happy(3).with_crash(CrashSpec {
        site: 2,
        point: CrashPoint::OnTransition { ordinal: 2, progress: TransitionProgress::BeforeLog },
        recover_at: Some(100),
    });
    cfg.record_trace = true;
    let r = run_with(&p, &a, cfg);
    let joined = r.trace.join("\n");
    assert!(joined.contains("CRASH"), "{joined}");
    assert!(joined.contains("RECOVER"), "{joined}");
    assert!(joined.contains("what-happened?"), "{joined}");
    assert!(joined.contains("outcome: committed"), "{joined}");
}
